"""Node/instance index tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.indexing import NodeToInstanceIndex


class TestNodeToInstanceIndex:
    def test_initial_state(self):
        index = NodeToInstanceIndex(10)
        assert index.count_of(0) == 10
        np.testing.assert_array_equal(index.rows_of(0), np.arange(10))
        np.testing.assert_array_equal(index.node_of_instance,
                                      np.zeros(10))

    def test_split_moves_rows(self):
        index = NodeToInstanceIndex(6)
        go_left = np.array([True, False, True, True, False, False])
        index.split_node(0, go_left, 1, 2)
        np.testing.assert_array_equal(index.rows_of(1), [0, 2, 3])
        np.testing.assert_array_equal(index.rows_of(2), [1, 4, 5])
        assert index.count_of(0) == 0
        np.testing.assert_array_equal(
            index.node_of_instance, [1, 2, 1, 1, 2, 2]
        )
        assert index.updates == 6

    def test_rows_stay_sorted_through_splits(self, rng):
        index = NodeToInstanceIndex(100)
        index.split_node(0, rng.random(100) < 0.5, 1, 2)
        index.split_node(1, rng.random(index.count_of(1)) < 0.5, 3, 4)
        for node in (2, 3, 4):
            rows = index.rows_of(node)
            assert np.all(np.diff(rows) > 0)

    def test_split_length_mismatch(self):
        index = NodeToInstanceIndex(5)
        with pytest.raises(ValueError, match="placement length"):
            index.split_node(0, np.array([True]), 1, 2)

    def test_retire_keeps_leaf_assignment(self):
        index = NodeToInstanceIndex(4)
        index.split_node(0, np.array([True, True, False, False]), 1, 2)
        index.retire_node(1)
        assert index.count_of(1) == 0
        np.testing.assert_array_equal(
            index.node_of_instance, [1, 1, 2, 2]
        )

    def test_smaller_child(self):
        index = NodeToInstanceIndex(10)
        go_left = np.array([True] * 3 + [False] * 7)
        index.split_node(0, go_left, 1, 2)
        assert index.smaller_child(1, 2) == 1
        assert index.smaller_child(2, 1) == 1

    def test_slot_of_instance(self):
        index = NodeToInstanceIndex(6)
        index.split_node(0, np.array([True, False] * 3), 1, 2)
        slots = index.slot_of_instance([1, 2])
        np.testing.assert_array_equal(slots, [0, 1, 0, 1, 0, 1])
        # retire node 2: its rows keep node id but get slot -1
        slots = index.slot_of_instance([1])
        np.testing.assert_array_equal(slots, [0, -1, 0, -1, 0, -1])

    def test_slot_of_instance_empty(self):
        index = NodeToInstanceIndex(3)
        np.testing.assert_array_equal(index.slot_of_instance([]),
                                      [-1, -1, -1])

    def test_active_nodes(self):
        index = NodeToInstanceIndex(4)
        index.split_node(0, np.array([True, True, False, False]), 1, 2)
        assert index.active_nodes() == [1, 2]

    def test_empty_index(self):
        index = NodeToInstanceIndex(0)
        assert index.count_of(0) == 0
        index.split_node(0, np.empty(0, dtype=bool), 1, 2)
        assert index.count_of(1) == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            NodeToInstanceIndex(-1)
