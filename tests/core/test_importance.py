"""Feature importance and model introspection tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.importance import (dump_ensemble, dump_tree,
                                   feature_importance, top_features)


@pytest.fixture(scope="module")
def informative_model():
    """Dataset where only the first three features carry signal."""
    rng = np.random.default_rng(7)
    from repro.data.matrix import CSRMatrix
    from repro.data.dataset import Dataset

    dense = rng.standard_normal((1500, 20))
    scores = dense[:, 0] * 3 + dense[:, 1] * 2 - dense[:, 2] * 2.5
    labels = (scores > 0).astype(np.int64)
    ds = Dataset(CSRMatrix.from_dense(dense), labels)
    cfg = TrainConfig(num_trees=6, num_layers=4, num_candidates=16,
                      learning_rate=0.5)
    result = GBDT(cfg).fit(ds)
    return result.ensemble, ds


class TestImportance:
    def test_finds_the_informative_features(self, informative_model):
        ensemble, ds = informative_model
        top = top_features(ensemble, ds.num_features, k=3, kind="gain")
        assert set(top) == {0, 1, 2}

    def test_split_counts_sum_to_splits(self, informative_model):
        ensemble, ds = informative_model
        counts = feature_importance(ensemble, ds.num_features,
                                    kind="split")
        total_splits = sum(t.num_splits for t in ensemble.trees)
        assert counts.sum() == total_splits

    def test_gain_nonnegative(self, informative_model):
        ensemble, ds = informative_model
        gains = feature_importance(ensemble, ds.num_features, kind="gain")
        assert np.all(gains >= 0)

    def test_unknown_kind(self, informative_model):
        ensemble, ds = informative_model
        with pytest.raises(ValueError, match="kind"):
            feature_importance(ensemble, ds.num_features, kind="cover")

    def test_feature_out_of_range_detected(self, informative_model):
        ensemble, _ = informative_model
        with pytest.raises(ValueError, match="outside"):
            feature_importance(ensemble, 1)

    def test_top_features_excludes_unused(self, informative_model):
        ensemble, ds = informative_model
        top = top_features(ensemble, ds.num_features, k=100)
        gains = feature_importance(ensemble, ds.num_features)
        assert all(gains[f] > 0 for f in top)


class TestDump:
    def test_dump_tree_mentions_splits_and_leaves(self, informative_model):
        ensemble, _ = informative_model
        text = dump_tree(ensemble.trees[0])
        assert "node 0:" in text
        assert "leaf" in text
        assert "gain" in text

    def test_feature_names(self, informative_model):
        ensemble, _ = informative_model
        text = dump_tree(ensemble.trees[0], {0: "age", 1: "salary",
                                             2: "score"})
        assert any(name in text for name in ("age", "salary", "score"))

    def test_dump_ensemble_has_headers(self, informative_model):
        ensemble, _ = informative_model
        text = dump_ensemble(ensemble)
        assert text.count("=== tree") == len(ensemble)
