"""Cross-validation and weighted-sketch tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TrainConfig
from repro.core.validation import cross_validate
from repro.sketch.proposer import (propose_candidates_exact,
                                   propose_candidates_weighted)
from repro.sketch.quantile import MergingSketch


class TestCrossValidation:
    def test_folds_cover_all_instances(self, small_binary):
        cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=8)
        result = cross_validate(cfg, small_binary, num_folds=4, seed=2)
        assert len(result.folds) == 4
        assert result.metric_name == "auc"
        assert 0.5 < result.mean <= 1.0
        assert result.std < 0.2

    def test_summary_string(self, small_binary):
        cfg = TrainConfig(num_trees=2, num_layers=3)
        result = cross_validate(cfg, small_binary, num_folds=3)
        assert "auc" in result.summary()
        assert "3 folds" in result.summary()

    def test_early_stopping_in_folds(self, small_binary):
        cfg = TrainConfig(num_trees=40, num_layers=6, learning_rate=1.0)
        result = cross_validate(cfg, small_binary, num_folds=3,
                                early_stopping_rounds=2)
        assert all(f.num_trees <= 40 for f in result.folds)

    def test_validation_errors(self, small_binary):
        cfg = TrainConfig(num_trees=1)
        with pytest.raises(ValueError, match="num_folds"):
            cross_validate(cfg, small_binary, num_folds=1)

    def test_multiclass(self, small_multiclass):
        cfg = TrainConfig(num_trees=3, num_layers=4,
                          objective="multiclass", num_classes=4)
        result = cross_validate(cfg, small_multiclass, num_folds=3)
        assert result.metric_name == "accuracy"
        assert result.mean > 0.3


class TestWeightedSketch:
    def test_weighted_update_count(self, rng):
        sketch = MergingSketch()
        sketch.update(rng.standard_normal(100), np.full(100, 2.0))
        assert sketch.count == pytest.approx(200.0)

    def test_weight_validation(self, rng):
        sketch = MergingSketch()
        with pytest.raises(ValueError, match="align"):
            sketch.update(np.ones(3), np.ones(2))
        with pytest.raises(ValueError, match=">= 0"):
            sketch.update(np.ones(2), np.array([1.0, -1.0]))

    def test_weighted_median_shifts(self, rng):
        """Doubling the weight of large values pulls quantiles up."""
        values = np.sort(rng.standard_normal(20_000))
        uniform = MergingSketch(eps=0.01)
        uniform.update(values)
        weights = np.where(values > 0, 4.0, 1.0)
        weighted = MergingSketch(eps=0.01)
        weighted.update(values, weights)
        assert weighted.query(0.5) > uniform.query(0.5)

    def test_weighted_matches_replication(self, rng):
        """Integer weights behave like repeating the observation."""
        values = rng.standard_normal(3_000)
        reps = rng.integers(1, 4, size=values.size)
        weighted = MergingSketch(eps=0.01)
        weighted.update(values, reps.astype(float))
        replicated = MergingSketch(eps=0.01)
        replicated.update(np.repeat(values, reps))
        for q in (0.25, 0.5, 0.75):
            assert weighted.query(q) == pytest.approx(
                replicated.query(q), abs=0.1
            )

    def test_weighted_candidates(self, rng):
        values = rng.standard_normal(10_000)
        hess = np.where(values > 1.0, 10.0, 0.1)
        cuts = propose_candidates_weighted(values, hess, 16)
        plain = propose_candidates_exact(values, 16)
        assert np.all(np.diff(cuts) > 0)
        # hessian mass above 1.0 draws most cut points there
        assert (cuts > 1.0).sum() > (plain > 1.0).sum()

    def test_empty_values(self):
        assert propose_candidates_weighted(np.empty(0), np.empty(0),
                                           8).size == 0
