"""HistogramBuilder engine tests.

Covers the reusable-workspace layer added on top of the kernels: pool
recycling carries no stale state, the root fast path of the row-store
kernel is bit-for-bit identical to the generic gather path, all four
kernels agree on random sparse shards for 1- and 3-dimensional
gradients, and the lookup-table leaf gathers match the masked loops
they replaced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gbdt import leaf_matrix
from repro.core.histogram import (ColumnwiseIndex, Histogram,
                                  HistogramBuilder, HistogramPool,
                                  build_rowstore, default_builder)
from repro.core.tree import Tree
from repro.data.matrix import CSRMatrix
from repro.systems.base import HistogramStore, _leaf_scores


def make_binned(rng, num_rows=40, num_features=6, num_bins=5,
                density=0.6):
    """Random binned CSR plus the dense bin matrix (-1 = missing)."""
    dense = np.full((num_rows, num_features), -1, dtype=np.int64)
    mask = rng.random((num_rows, num_features)) < density
    dense[mask] = rng.integers(0, num_bins, size=mask.sum())
    rows = []
    for i in range(num_rows):
        cols = np.flatnonzero(dense[i] >= 0)
        rows.append([(int(c), int(dense[i, c])) for c in cols])
    csr = CSRMatrix.from_rows(rows, num_features, dtype=np.int32)
    return csr, dense


class TestHistogramPool:
    def test_recycles_by_shape(self):
        pool = HistogramPool()
        a = pool.acquire(3, 4, 2)
        pool.release(a)
        b = pool.acquire(3, 4, 2)
        assert b is a
        assert pool.hits == 1 and pool.misses == 1
        # a different shape must not reuse the parked buffer
        c = pool.acquire(3, 4, 1)
        assert c is not a

    def test_recycled_buffer_is_zeroed(self):
        pool = HistogramPool()
        hist = pool.acquire(3, 4, 2)
        hist.grad[:] = 7.0
        hist.hess[:] = -1.0
        pool.release(hist)
        again = pool.acquire(3, 4, 2)
        assert again is hist
        assert np.all(again.grad == 0.0)
        assert np.all(again.hess == 0.0)

    def test_double_release_ignored(self):
        pool = HistogramPool()
        hist = Histogram(2, 2, 1)
        pool.release(hist)
        pool.release(hist)
        assert pool.retained == 1
        assert pool.acquire(2, 2, 1) is hist
        assert pool.acquire(2, 2, 1) is not hist

    def test_release_none_is_noop(self):
        pool = HistogramPool()
        pool.release(None)
        assert pool.retained == 0

    def test_retention_cap(self):
        pool = HistogramPool(max_retained=2)
        for _ in range(5):
            pool.release(Histogram(2, 2, 1))
        assert pool.retained == 2

    def test_interleaved_stress_never_aliases_live_buffers(self):
        """Seeded storm of acquire/release across mixed shapes: a live
        buffer must never be handed out twice, sentinel contents must
        survive other traffic, and the pool stays within its cap."""
        pool = HistogramPool(max_retained=8)
        rng = np.random.default_rng(20260807)
        shapes = [(2, 3, 1), (2, 3, 2), (4, 2, 1)]
        live = {}  # id(hist) -> (hist, shape, sentinel)
        for step in range(600):
            if live and (rng.random() < 0.45 or len(live) > 32):
                key = rng.choice(list(live))
                hist, shape, sentinel = live.pop(key)
                # the sentinel written at acquire time is intact: no
                # other live acquire ever aliased this buffer
                assert np.all(hist.grad == sentinel), \
                    f"step {step}: buffer clobbered while live"
                assert np.all(hist.hess == -sentinel)
                pool.release(hist)
            else:
                shape = shapes[rng.integers(len(shapes))]
                hist = pool.acquire(*shape)
                assert id(hist) not in live, \
                    f"step {step}: live buffer handed out twice"
                assert (hist.num_features, hist.num_bins,
                        hist.gradient_dim) == shape
                # recycled buffers come back zeroed
                assert np.all(hist.grad == 0.0)
                assert np.all(hist.hess == 0.0)
                sentinel = float(step + 1)
                hist.grad[:] = sentinel
                hist.hess[:] = -sentinel
                live[id(hist)] = (hist, shape, sentinel)
            assert pool.retained <= pool.max_retained
        # drain: every survivor still holds its own sentinel
        for hist, _, sentinel in live.values():
            assert np.all(hist.grad == sentinel)
        # every acquire was either a recycle hit or a fresh allocation
        assert pool.hits + pool.misses > 0
        assert pool.hits > 0 and pool.misses > 0


class TestBuilderReuse:
    def test_recycled_kernel_runs_carry_no_stale_state(self, rng):
        """Two builds through one builder equal two independent builds."""
        csr, _ = make_binned(rng)
        rows = np.arange(40, dtype=np.int64)
        builder = HistogramBuilder()
        for trial in range(3):
            grad = rng.standard_normal((40, 1))
            hess = rng.random((40, 1))
            hist, touched = builder.build_rowstore(csr, rows, grad, hess, 5)
            fresh, fresh_touched = HistogramBuilder().build_rowstore(
                csr, rows, grad, hess, 5
            )
            assert touched == fresh_touched
            assert np.array_equal(hist.grad, fresh.grad)
            assert np.array_equal(hist.hess, fresh.hess)
            builder.release(hist)

    def test_pool_feeds_kernel_results(self, rng):
        csr, _ = make_binned(rng)
        rows = np.arange(40, dtype=np.int64)
        grad = rng.standard_normal((40, 1))
        builder = HistogramBuilder()
        first, _ = builder.build_rowstore(csr, rows, grad, grad, 5)
        builder.release(first)
        second, _ = builder.build_rowstore(csr, rows, grad, grad, 5)
        assert second is first  # recycled, not reallocated

    def test_default_builder_is_shared(self):
        assert default_builder() is default_builder()


class TestRootFastPath:
    @pytest.mark.parametrize("gradient_dim", [1, 3])
    def test_bit_for_bit_vs_generic(self, rng, gradient_dim):
        csr, _ = make_binned(rng, num_rows=60, num_features=8, num_bins=7,
                             density=0.4)
        grad = rng.standard_normal((60, gradient_dim))
        hess = rng.random((60, gradient_dim))
        rows = np.arange(60, dtype=np.int64)
        builder = HistogramBuilder()
        via_root, touched_root = builder._rowstore_root(csr, grad, hess, 7)
        via_gather, touched_gather = builder._rowstore_gather(
            csr, rows, grad, hess, 7
        )
        assert touched_root == touched_gather == csr.nnz
        assert np.array_equal(via_root.grad, via_gather.grad)
        assert np.array_equal(via_root.hess, via_gather.hess)

    def test_dispatch_takes_root_path_for_all_rows(self, rng, monkeypatch):
        csr, _ = make_binned(rng)
        grad = rng.standard_normal((40, 1))
        builder = HistogramBuilder()
        called = {}

        def spy(shard, g, h, num_bins):
            called["root"] = True
            return HistogramBuilder._rowstore_root(builder, shard, g, h,
                                                   num_bins)

        monkeypatch.setattr(builder, "_rowstore_root", spy)
        builder.build_rowstore(csr, np.arange(40), grad, grad, 5)
        assert called.get("root")
        called.clear()
        builder.build_rowstore(csr, np.arange(39), grad, grad, 5)
        assert "root" not in called

    def test_empty_shard(self, rng):
        csr = CSRMatrix.from_rows([[] for _ in range(4)], 3,
                                  dtype=np.int32)
        grad = np.ones((4, 1))
        hist, touched = build_rowstore(csr, np.arange(4), grad, grad, 5)
        assert touched == 0
        assert np.all(hist.grad == 0.0)


class TestFourKernelAgreement:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           gradient_dim=st.sampled_from([1, 3]))
    def test_all_kernels_allclose(self, seed, gradient_dim):
        rng = np.random.default_rng(seed)
        num_rows, num_features, num_bins = 50, 7, 6
        csr, dense = make_binned(rng, num_rows=num_rows,
                                 num_features=num_features,
                                 num_bins=num_bins,
                                 density=float(rng.uniform(0.1, 0.9)))
        csc = csr.to_csc()
        grad = rng.standard_normal((num_rows, gradient_dim))
        hess = rng.random((num_rows, gradient_dim))
        node_of = rng.integers(0, 2, size=num_rows).astype(np.int64)
        node_rows = np.flatnonzero(node_of == 1).astype(np.int64)
        builder = HistogramBuilder()

        via_row, _ = builder.build_rowstore(csr, node_rows, grad, hess,
                                            num_bins)
        layer_hists, _ = builder.build_colstore_layer(
            csc, node_of, 2, grad, hess, num_bins
        )
        via_layer = layer_hists[1]
        via_hybrid, _, _ = builder.build_colstore_hybrid(
            csc, node_rows, node_of, 1, grad, hess, num_bins
        )
        index = ColumnwiseIndex(csc)
        index.update_after_split(node_of, [0, 1])
        via_columnwise, _ = builder.build_colstore_columnwise(
            index, 1, grad, hess, num_bins
        )

        for other in (via_layer, via_hybrid, via_columnwise):
            assert via_row.allclose(other, rtol=1e-9, atol=1e-12)


class TestPooledHistogramStore:
    def test_pop_recycles_and_returns_none(self):
        pool = HistogramPool()
        store = HistogramStore(pool=pool)
        hist = Histogram(3, 4, 1)
        store.put(0, hist)
        assert store.live_bytes == hist.nbytes
        assert store.pop(0) is None
        assert store.live_bytes == 0
        assert store.peak_bytes == hist.nbytes
        assert pool.acquire(3, 4, 1) is hist

    def test_pop_without_pool_returns_hist(self):
        store = HistogramStore()
        hist = Histogram(3, 4, 1)
        store.put(0, hist)
        assert store.pop(0) is hist

    def test_clear_recycles(self):
        pool = HistogramPool()
        store = HistogramStore(pool=pool)
        store.put(0, Histogram(3, 4, 1))
        store.put(1, Histogram(3, 4, 1))
        store.clear()
        assert store.live_bytes == 0
        assert pool.retained == 2


class TestLeafLookupTables:
    def _make_tree(self):
        tree = Tree(3, 1)
        tree.set_leaf(1, np.array([0.5]))
        tree.set_leaf(2, np.array([-1.25]))
        return tree

    def _reference(self, tree, leaf_of_instance):
        out = np.zeros((leaf_of_instance.size, tree.gradient_dim))
        for node_id, node in tree.nodes.items():
            if node.is_leaf:
                mask = leaf_of_instance == node_id
                if mask.any():
                    out[mask] = node.weight
        return out

    @pytest.mark.parametrize("fn", [leaf_matrix, _leaf_scores])
    def test_matches_masked_loop(self, rng, fn):
        tree = self._make_tree()
        leaf_of = rng.choice([1, 2], size=30).astype(np.int32)
        assert np.array_equal(fn(tree, leaf_of),
                              self._reference(tree, leaf_of))

    @pytest.mark.parametrize("fn", [leaf_matrix, _leaf_scores])
    def test_subsampled_rows_get_zero(self, rng, fn):
        tree = self._make_tree()
        leaf_of = rng.choice([1, 2, -1], size=30).astype(np.int32)
        got = fn(tree, leaf_of)
        assert np.array_equal(got, self._reference(tree, leaf_of))
        assert np.all(got[leaf_of == -1] == 0.0)
