"""Reference trainer tests: learning behaviour and internal consistency."""

from __future__ import annotations

import numpy as np

from repro import GBDT, TrainConfig, make_classification, make_regression
from repro.core.gbdt import grow_tree
from repro.core.loss import make_loss
from repro.data.dataset import bin_dataset


class TestBinaryTraining:
    def test_train_loss_decreases(self, small_binary):
        cfg = TrainConfig(num_trees=8, num_layers=4, num_candidates=8)
        result = GBDT(cfg).fit(*small_binary.split(0.8, seed=3))
        losses = [e.train_loss for e in result.evals]
        assert losses == sorted(losses, reverse=True)

    def test_validation_auc_improves(self, small_binary):
        train, valid = small_binary.split(0.75, seed=4)
        cfg = TrainConfig(num_trees=10, num_layers=5, num_candidates=16)
        result = GBDT(cfg).fit(train, valid)
        assert result.evals[-1].metric_value > result.evals[0].metric_value
        assert result.evals[-1].metric_value > 0.8

    def test_predictions_are_probabilities(self, small_binary):
        cfg = TrainConfig(num_trees=3, num_layers=4)
        gbdt = GBDT(cfg)
        result = gbdt.fit(small_binary)
        preds = gbdt.predict(result.ensemble, small_binary)
        assert preds.shape == (small_binary.num_instances,)
        assert np.all((preds > 0) & (preds < 1))

    def test_deterministic(self, small_binary):
        cfg = TrainConfig(num_trees=3, num_layers=4)
        r1 = GBDT(cfg).fit(small_binary)
        r2 = GBDT(cfg).fit(small_binary)
        p1 = GBDT(cfg).predict(r1.ensemble, small_binary)
        p2 = GBDT(cfg).predict(r2.ensemble, small_binary)
        np.testing.assert_array_equal(p1, p2)

    def test_overfits_small_data(self):
        """Enough deep trees should drive training loss near zero."""
        ds = make_classification(200, 10, density=1.0, noise=0.0, seed=5)
        cfg = TrainConfig(num_trees=30, num_layers=6, num_candidates=32,
                          learning_rate=0.5, reg_lambda=0.1)
        result = GBDT(cfg).fit(ds, ds)
        assert result.evals[-1].train_loss < 0.1
        assert result.evals[-1].metric_value > 0.99


class TestMulticlassTraining:
    def test_accuracy_improves(self, small_multiclass):
        train, valid = small_multiclass.split(0.75, seed=6)
        cfg = TrainConfig(num_trees=8, num_layers=4,
                          objective="multiclass", num_classes=4)
        result = GBDT(cfg).fit(train, valid)
        assert result.evals[-1].metric_name == "accuracy"
        assert result.evals[-1].metric_value > \
            result.evals[0].metric_value - 0.02
        assert result.evals[-1].metric_value > 0.5

    def test_leaf_vectors_have_class_dim(self, small_multiclass):
        cfg = TrainConfig(num_trees=1, num_layers=3,
                          objective="multiclass", num_classes=4)
        result = GBDT(cfg).fit(small_multiclass)
        tree = result.ensemble.trees[0]
        for node in tree.nodes.values():
            if node.is_leaf:
                assert node.weight.shape == (4,)


class TestRegressionTraining:
    def test_rmse_decreases(self):
        ds = make_regression(800, 20, density=0.8, noise=0.05, seed=8)
        train, valid = ds.split(0.8, seed=9)
        cfg = TrainConfig(num_trees=12, num_layers=4,
                          objective="regression", learning_rate=0.3)
        result = GBDT(cfg).fit(train, valid)
        assert result.evals[-1].metric_name == "rmse"
        assert result.evals[-1].metric_value < result.evals[0].metric_value


class TestGrowTree:
    def test_training_leaves_match_prediction_path(self, small_binary):
        """Leaf assignment via the index must equal raw-feature routing."""
        cfg = TrainConfig(num_trees=1, num_layers=5)
        binned = bin_dataset(small_binary, cfg.num_candidates)
        loss = make_loss("binary")
        scores = loss.init_scores(small_binary.num_instances)
        grad, hess = loss.gradients(small_binary.labels, scores)
        tree, leaf_of_instance = grow_tree(cfg, binned, grad, hess)
        routed = tree.assign_leaves(small_binary.csc())
        np.testing.assert_array_equal(leaf_of_instance, routed)

    def test_respects_min_node_instances(self, small_binary):
        """Nodes below 2x the minimum are never split (they become
        leaves), so a prohibitive minimum yields a single-leaf tree and a
        moderate one strictly reduces the number of splits."""
        binned = bin_dataset(small_binary, 8)
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            small_binary.labels,
            loss.init_scores(small_binary.num_instances),
        )
        cfg_blocked = TrainConfig(num_trees=1, num_layers=7,
                                  num_candidates=8,
                                  min_node_instances=binned.num_instances)
        tree, _ = grow_tree(cfg_blocked, binned, grad, hess)
        assert tree.num_splits == 0
        cfg_free = TrainConfig(num_trees=1, num_layers=7, num_candidates=8)
        cfg_limited = TrainConfig(num_trees=1, num_layers=7,
                                  num_candidates=8,
                                  min_node_instances=150)
        free, _ = grow_tree(cfg_free, binned, grad, hess)
        limited, _ = grow_tree(cfg_limited, binned, grad, hess)
        assert limited.num_splits < free.num_splits

    def test_max_depth_respected(self, small_binary):
        cfg = TrainConfig(num_trees=1, num_layers=3)
        binned = bin_dataset(small_binary, cfg.num_candidates)
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            small_binary.labels,
            loss.init_scores(small_binary.num_instances),
        )
        tree, _ = grow_tree(cfg, binned, grad, hess)
        assert max(tree.nodes) <= 6  # layers 0..2 -> ids 0..6

    def test_sparse_dataset_trains(self, small_sparse):
        train, valid = small_sparse.split(0.8, seed=10)
        cfg = TrainConfig(num_trees=20, num_layers=5, learning_rate=0.3)
        result = GBDT(cfg).fit(train, valid)
        assert result.evals[-1].metric_value > 0.6
