"""Stochastic GBDT (row/feature subsampling) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, GBDT, TrainConfig, make_system
from repro.core.gbdt import grow_tree
from repro.core.importance import feature_importance
from repro.core.indexing import NodeToInstanceIndex
from repro.core.loss import make_loss


class TestIndexSubset:
    def test_subset_root(self):
        index = NodeToInstanceIndex(10, rows=np.array([1, 3, 5]))
        np.testing.assert_array_equal(index.rows_of(0), [1, 3, 5])
        assert index.node_of_instance[0] == -1
        assert index.node_of_instance[1] == 0

    def test_out_of_range_rows(self):
        with pytest.raises(ValueError, match="out of range"):
            NodeToInstanceIndex(5, rows=np.array([7]))

    def test_duplicates_collapsed(self):
        index = NodeToInstanceIndex(5, rows=np.array([2, 2, 4]))
        assert index.count_of(0) == 2


class TestConfigValidation:
    def test_ranges(self):
        with pytest.raises(ValueError, match="subsample"):
            TrainConfig(subsample=0.0)
        with pytest.raises(ValueError, match="colsample"):
            TrainConfig(colsample=1.5)

    def test_uses_sampling(self):
        assert not TrainConfig().uses_sampling
        assert TrainConfig(subsample=0.5).uses_sampling
        assert TrainConfig(colsample=0.5).uses_sampling

    def test_distributed_rejects_sampling(self):
        cfg = TrainConfig(subsample=0.5)
        with pytest.raises(ValueError, match="reference-trainer"):
            make_system("vero", cfg, ClusterConfig(2))

    def test_distributed_rejects_leafwise(self):
        cfg = TrainConfig(growth="leafwise")
        with pytest.raises(ValueError, match="layer-wise"):
            make_system("qd2", cfg, ClusterConfig(2))


class TestRowSampling:
    def test_trains_and_learns(self, small_binary):
        train, valid = small_binary.split(0.8, seed=1)
        cfg = TrainConfig(num_trees=15, num_layers=5, num_candidates=16,
                          learning_rate=0.3, subsample=0.6, seed=3)
        result = GBDT(cfg).fit(train, valid)
        assert result.evals[-1].metric_value > 0.8

    def test_unsampled_rows_marked(self, binned_binary):
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            binned_binary.labels,
            loss.init_scores(binned_binary.num_instances),
        )
        cfg = TrainConfig(num_trees=1, num_layers=4, num_candidates=8)
        rows = np.arange(0, binned_binary.num_instances, 2)
        tree, leaf = grow_tree(cfg, binned_binary, grad, hess,
                               sample_rows=rows)
        assert np.all(leaf[1::2] == -1)
        assert np.all(leaf[::2] >= 0)

    def test_different_seeds_different_trees(self, small_binary):
        def first_tree(seed):
            cfg = TrainConfig(num_trees=1, num_layers=5,
                              num_candidates=16, subsample=0.3,
                              seed=seed)
            return GBDT(cfg).fit(small_binary).ensemble.trees[0]

        a, b = first_tree(1), first_tree(2)
        splits_a = {(n.split.feature, n.split.bin)
                    for n in a.internal_nodes()}
        splits_b = {(n.split.feature, n.split.bin)
                    for n in b.internal_nodes()}
        assert splits_a != splits_b


class TestColumnSampling:
    def test_only_sampled_features_used(self, small_binary):
        cfg = TrainConfig(num_trees=6, num_layers=4, num_candidates=16,
                          colsample=0.2, seed=5)
        result = GBDT(cfg).fit(small_binary)
        used = feature_importance(result.ensemble,
                                  small_binary.num_features,
                                  kind="split")
        # at most colsample * D features per tree; across 6 trees the
        # union stays well below the full feature set
        assert np.count_nonzero(used) < small_binary.num_features

    def test_single_tree_respects_mask(self, binned_binary):
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            binned_binary.labels,
            loss.init_scores(binned_binary.num_instances),
        )
        cfg = TrainConfig(num_trees=1, num_layers=5, num_candidates=8)
        mask = np.zeros(binned_binary.num_features, dtype=bool)
        mask[:5] = True
        tree, _ = grow_tree(cfg, binned_binary, grad, hess,
                            feature_mask=mask)
        for node in tree.internal_nodes():
            assert node.split.feature < 5

    def test_leafwise_rejects_sampling(self, binned_binary):
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            binned_binary.labels,
            loss.init_scores(binned_binary.num_instances),
        )
        cfg = TrainConfig(num_trees=1, growth="leafwise")
        with pytest.raises(ValueError, match="layer-wise"):
            grow_tree(cfg, binned_binary, grad, hess,
                      sample_rows=np.array([0, 1]))
