"""Kernel-backend registry and bit-identity contract tests.

The backend abstraction only earns its keep if every registered backend
is a *drop-in* replacement: same bits out of the scatter kernels, same
trees out of training, same scores out of serving.  These tests pin the
registry mechanics (resolution, auto-detection, the
``REPRO_DISABLE_BACKENDS`` mask, graceful degradation when numba is
absent), the HistogramPool dtype keying regression, the no-hessian fast
path, and a hypothesis sweep proving exact scatter equality on random
binned datasets — dense, sparse, and missing-heavy — for every backend
the machine can import.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TrainConfig
from repro.core.gbdt import GBDT
from repro.core.histogram import (ColumnwiseIndex, Histogram,
                                  HistogramBuilder, HistogramPool)
from repro.core.kernels import (BACKENDS, DISABLE_ENV, BackendUnavailableError,
                                NumbaBackend, available_backends,
                                backend_names, compute_factor,
                                detect_backends, make_backend,
                                resolve_backend_name)
from repro.core.loss import make_loss
from repro.data.dataset import Dataset, bin_dataset
from repro.data.synthetic import make_classification
from repro.selfcheck import check_available_backends, check_backend

from .test_hist_builder import make_binned

#: every backend this machine can actually run, numpy first
AVAILABLE = available_backends()
#: the non-reference backends under bit-identity test
CANDIDATES = [b for b in AVAILABLE if b != "numpy"]


class TestRegistry:
    def test_numpy_always_registered_and_available(self):
        assert "numpy" in backend_names()
        assert "numpy" in AVAILABLE
        assert AVAILABLE[0] == "numpy"

    def test_all_three_backends_registered(self):
        for name in ("numpy", "pyloop", "numba"):
            assert name in backend_names()

    def test_resolve_default_and_aliases(self):
        assert resolve_backend_name("") == "numpy"
        assert resolve_backend_name(None) == "numpy"
        assert resolve_backend_name("numpy") == "numpy"

    def test_resolve_auto_prefers_highest_priority(self):
        best = resolve_backend_name("auto")
        assert best in AVAILABLE
        priorities = {n: BACKENDS[n].priority for n in AVAILABLE}
        assert priorities[best] == max(priorities.values())

    def test_resolve_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name("cuda")

    def test_make_backend_accepts_instance_and_none(self):
        backend = make_backend("numpy")
        assert make_backend(backend) is backend
        assert make_backend(None).name == "numpy"

    def test_unavailable_backend_raises(self, monkeypatch):
        monkeypatch.setattr(NumbaBackend, "is_available",
                            classmethod(lambda cls: False))
        with pytest.raises(BackendUnavailableError, match="numba"):
            make_backend("numba")

    def test_disable_env_masks_backends(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "pyloop,numba")
        masked = available_backends()
        assert "pyloop" not in masked
        assert "numba" not in masked
        assert "numpy" in masked
        # auto never resolves to a masked backend
        assert resolve_backend_name("auto") == "numpy"
        # and the mask cannot hide the numpy baseline
        monkeypatch.setenv(DISABLE_ENV, "numpy")
        assert "numpy" in available_backends()

    def test_compute_factor(self):
        assert compute_factor("") == 1.0
        assert compute_factor("numpy") == 1.0
        assert compute_factor("numba") > 1.0
        assert compute_factor("pyloop") < 1.0

    def test_detect_backends_reports_all(self):
        infos = {i.name: i for i in detect_backends()}
        assert set(infos) == set(backend_names())
        assert infos["numpy"].available
        assert infos["numpy"].default
        for info in infos.values():
            line = info.describe()
            assert info.name in line
            if not info.available:
                assert "not available" in line


class TestHistogramPoolDtypeKeying:
    def test_float32_never_aliases_float64(self):
        """Regression: a released float32 histogram must not satisfy a
        float64 acquire of the same shape (silent precision loss)."""
        pool = HistogramPool()
        low = pool.acquire(3, 4, 1, dtype=np.float32)
        assert low.grad.dtype == np.float32
        pool.release(low)
        high = pool.acquire(3, 4, 1)
        assert high is not low
        assert high.grad.dtype == np.float64
        # same dtype still recycles
        pool.release(high)
        assert pool.acquire(3, 4, 1) is high
        assert pool.acquire(3, 4, 1, dtype=np.float32) is low

    def test_histogram_dtype_propagates(self):
        hist = Histogram(2, 3, 1, dtype=np.float32)
        assert hist.grad.dtype == np.float32
        assert hist.hess.dtype == np.float32
        copy = hist.copy()
        assert copy.grad.dtype == np.float32


@pytest.mark.parametrize("backend", CANDIDATES)
class TestScatterBitIdentity:
    """Exact scatter equality vs numpy on random binned shards."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           density=st.floats(0.05, 0.95),
           gradient_dim=st.sampled_from([1, 3]))
    def test_all_four_kernels_exact(self, backend, seed, density,
                                    gradient_dim):
        rng = np.random.default_rng(seed)
        num_rows, num_features, num_bins = 50, 7, 6
        csr, _ = make_binned(rng, num_rows=num_rows,
                             num_features=num_features, num_bins=num_bins,
                             density=density)
        csc = csr.to_csc()
        grad = rng.standard_normal((num_rows, gradient_dim))
        hess = rng.random((num_rows, gradient_dim))
        node_of = rng.integers(0, 2, size=num_rows).astype(np.int64)
        node_rows = np.flatnonzero(node_of == 1).astype(np.int64)
        ref = HistogramBuilder(backend="numpy")
        got = HistogramBuilder(backend=backend)

        pairs = []
        pairs.append((ref.build_rowstore(csr, node_rows, grad, hess,
                                         num_bins)[0],
                      got.build_rowstore(csr, node_rows, grad, hess,
                                         num_bins)[0]))
        pairs.append((ref.build_colstore_hybrid(csc, node_rows, node_of, 1,
                                                grad, hess, num_bins)[0],
                      got.build_colstore_hybrid(csc, node_rows, node_of, 1,
                                                grad, hess, num_bins)[0]))
        ref_layer, _ = ref.build_colstore_layer(csc, node_of, 2, grad,
                                                hess, num_bins)
        got_layer, _ = got.build_colstore_layer(csc, node_of, 2, grad,
                                                hess, num_bins)
        pairs.extend(zip(ref_layer, got_layer))
        ref_index = ColumnwiseIndex(csc)
        ref_index.update_after_split(node_of, [0, 1])
        pairs.append((ref.build_colstore_columnwise(ref_index, 1, grad,
                                                    hess, num_bins)[0],
                      got.build_colstore_columnwise(ref_index, 1, grad,
                                                    hess, num_bins)[0]))
        for expect, actual in pairs:
            assert np.array_equal(expect.grad, actual.grad)
            assert np.array_equal(expect.hess, actual.hess)

    def test_no_hessian_fast_path_exact(self, backend):
        """With ``constant_hessian == 1.0`` (square loss) the hessian
        histogram is a bin count; the fast path must still be exact."""
        rng = np.random.default_rng(3)
        csr, _ = make_binned(rng, num_rows=80, num_features=6, num_bins=5,
                             density=0.5)
        grad = rng.standard_normal((80, 1))
        hess = np.ones((80, 1))
        rows = np.arange(0, 80, 3, dtype=np.int64)
        generic = HistogramBuilder(backend=backend)
        fast = HistogramBuilder(backend=backend)
        fast.constant_hessian = 1.0
        via_generic, _ = generic.build_rowstore(csr, rows, grad, hess, 5)
        via_fast, _ = fast.build_rowstore(csr, rows, grad, hess, 5)
        assert np.array_equal(via_generic.grad, via_fast.grad)
        assert np.array_equal(via_generic.hess, via_fast.hess)

    def test_training_bit_identical(self, backend):
        """End-to-end: identical trees for logistic and square loss."""
        clf = make_classification(250, 15, density=0.4, seed=21)
        reg = Dataset(clf.features,
                      np.asarray(clf.labels, dtype=np.float64) - 0.5,
                      task="regression", name="kernels-reg")
        for dataset, objective in ((clf, "binary"), (reg, "regression")):
            binned = bin_dataset(dataset, 10)
            models = {}
            for name in ("numpy", backend):
                cfg = TrainConfig(num_trees=3, num_layers=4,
                                  num_candidates=10, objective=objective,
                                  backend=name)
                models[name] = GBDT(cfg).fit(dataset, binned=binned)
            ref = models["numpy"].ensemble.raw_scores(dataset.csc())
            got = models[backend].ensemble.raw_scores(dataset.csc())
            assert np.array_equal(ref, got)


class TestBuilderWiring:
    def test_builder_defaults_to_numpy(self):
        assert HistogramBuilder().backend.name == "numpy"

    def test_trainer_threads_backend_and_hessian(self):
        cfg = TrainConfig(num_trees=1, num_layers=2, objective="regression",
                          backend="numpy")
        trainer = GBDT(cfg)
        assert trainer.builder.backend.name == "numpy"
        assert trainer.builder.constant_hessian == \
            make_loss("regression", 2).constant_hessian == 1.0
        assert GBDT(TrainConfig(num_trees=1)).builder.constant_hessian \
            is None

    def test_config_rejects_unknown_backend_at_build(self):
        cfg = TrainConfig(num_trees=1, backend="tpu")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            GBDT(cfg)


class TestSelfCheck:
    def test_every_available_backend_passes(self):
        results = check_available_backends()
        assert [r.backend for r in results] == AVAILABLE
        for result in results:
            assert result.passed, result.describe()
            assert result.checks == 7
            assert "bit-identical" in result.describe()

    def test_unknown_backend_fails_cleanly(self):
        result = check_backend("cuda")
        assert not result.passed
        assert "construction failed" in result.detail

    def test_miscompare_detected(self, monkeypatch):
        """A backend that computes different bits must be flagged."""
        from repro.core.kernels import PyLoopBackend

        if "pyloop" not in available_backends():
            pytest.skip("pyloop masked on this run")

        original = PyLoopBackend.scatter

        def corrupt(self, hist, keys, entry_rows, grad, hess, size,
                    hess_const=None):
            original(self, hist, keys, entry_rows, grad, hess, size,
                     hess_const=hess_const)
            hist.grad += 1e-9

        monkeypatch.setattr(PyLoopBackend, "scatter", corrupt)
        result = check_backend("pyloop")
        assert not result.passed
        assert "diverged" in result.detail
