"""Empirical validation of the Section 3.2.4 complexity claims.

Rather than wall-clock time (noisy), these tests count *stored-entry
accesses* reported by the instrumented kernels and check they scale as
the paper's analysis says: histogram construction O(N d / W) per layer,
subtraction skipping at least half the instances below the root, the
hybrid column kernel's search/scan split, and the columnwise index's
O(nnz)-per-layer maintenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_classification
from repro.core.gbdt import build_histograms_with_subtraction
from repro.core.histogram import (ColumnwiseIndex, build_colstore_hybrid,
                                  build_colstore_layer, build_rowstore)
from repro.core.indexing import NodeToInstanceIndex
from repro.core.loss import make_loss
from repro.data.dataset import bin_dataset


@pytest.fixture(scope="module")
def counted():
    ds = make_classification(4_000, 80, density=0.5, seed=88)
    binned = bin_dataset(ds, 12)
    loss = make_loss("binary")
    grad, hess = loss.gradients(
        ds.labels, loss.init_scores(ds.num_instances)
    )
    return ds, binned, grad, hess


class TestAccessCounts:
    def test_rowstore_touches_exactly_node_entries(self, counted):
        _, binned, grad, hess = counted
        rows = np.arange(0, binned.num_instances, 3)
        _, touched = build_rowstore(binned.binned, rows, grad, hess,
                                    binned.num_bins)
        lengths = np.diff(binned.binned.indptr)[rows]
        assert touched == int(lengths.sum())

    def test_colstore_layer_always_touches_everything(self, counted):
        """QD1's kernel scans all nnz per layer regardless of how many
        rows remain on active nodes — the no-subtraction cost."""
        _, binned, grad, hess = counted
        csc = binned.csc()
        # only 10% of instances still active
        slot = np.full(binned.num_instances, -1, dtype=np.int64)
        slot[:binned.num_instances // 10] = 0
        _, touched = build_colstore_layer(csc, slot, 1, grad, hess,
                                          binned.num_bins)
        assert touched == csc.nnz

    def test_subtraction_halves_layer_accesses(self, counted):
        """With subtraction, one layer's builds touch only the smaller
        sibling of each pair: at most half the parent entries."""
        _, binned, grad, hess = counted
        index = NodeToInstanceIndex(binned.num_instances)
        store = {}
        root_scanned = build_histograms_with_subtraction(
            binned, index, [0], grad, hess, store,
        )
        rng = np.random.default_rng(0)
        index.split_node(0, rng.random(binned.num_instances) < 0.5, 1, 2)
        layer_scanned = build_histograms_with_subtraction(
            binned, index, [1, 2], grad, hess, store,
        )
        assert layer_scanned <= root_scanned * 0.55

    def test_hybrid_kernel_work_bounded(self, counted):
        """scanned + searched stays within the per-column minimum of the
        two strategies (summed), i.e. never worse than either plan."""
        _, binned, grad, hess = counted
        csc = binned.csc()
        node_of = np.zeros(binned.num_instances, dtype=np.int64)
        node_of[:20] = 1  # tiny node: search beats scanning long columns
        node_rows = np.flatnonzero(node_of == 1)
        _, scanned, searched = build_colstore_hybrid(
            csc, node_rows, node_of, 1, grad, hess, binned.num_bins,
        )
        # upper bound: pure linear scan of all columns
        assert scanned + searched <= csc.nnz
        # small node on long columns: the kernel must binary-search
        assert searched > 0

    def test_columnwise_update_touches_all_entries(self, counted):
        _, binned, grad, hess = counted
        csc = binned.csc()
        index = ColumnwiseIndex(csc)
        node_of = np.random.default_rng(1).integers(
            1, 3, size=binned.num_instances
        )
        moved = index.update_after_split(node_of, [1, 2])
        assert moved == csc.nnz  # D-times the other indexes' bookkeeping

    def test_node_split_updates_linear_in_instances(self, counted):
        """NodeToInstanceIndex moves each instance exactly once per
        layer: O(N) node splitting (Section 3.2.4)."""
        _, binned, grad, hess = counted
        index = NodeToInstanceIndex(binned.num_instances)
        rng = np.random.default_rng(2)
        index.split_node(0, rng.random(binned.num_instances) < 0.5, 1, 2)
        first_layer = index.updates
        assert first_layer == binned.num_instances
        for node in (1, 2):
            count = index.count_of(node)
            index.split_node(node, rng.random(count) < 0.5,
                             2 * node + 1, 2 * node + 2)
        assert index.updates == 2 * binned.num_instances


class TestScalingWithWorkers:
    def test_vertical_per_worker_entries_shrink_with_w(self, counted):
        """Each vertical worker's histogram work is ~nnz / W."""
        from repro.cluster.partition import vertical_shards

        _, binned, grad, hess = counted
        total = binned.binned.nnz
        for workers in (2, 4, 8):
            shards, _ = vertical_shards(binned, workers)
            max_load = max(s.binned.nnz for s in shards)
            assert max_load <= total / workers * 1.3

    def test_horizontal_per_worker_entries_shrink_with_w(self, counted):
        from repro.cluster.partition import horizontal_shards

        _, binned, grad, hess = counted
        total = binned.binned.nnz
        for workers in (2, 4, 8):
            shards, _ = horizontal_shards(binned, workers)
            max_load = max(s.binned.nnz for s in shards)
            assert max_load <= total / workers * 1.3
