"""Early stopping and leaf-wise growth tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.gbdt import metric_improved


class TestEarlyStopping:
    def test_stops_before_budget(self, small_binary):
        train, valid = small_binary.split(0.8, seed=1)
        cfg = TrainConfig(num_trees=60, num_layers=6, num_candidates=16,
                          learning_rate=1.0)  # aggressive -> overfits
        result = GBDT(cfg).fit(train, valid, early_stopping_rounds=3)
        assert len(result.ensemble) < 60
        assert result.best_iteration is not None
        assert result.best_iteration <= len(result.ensemble) - 1

    def test_best_iteration_is_the_peak(self, small_binary):
        train, valid = small_binary.split(0.8, seed=2)
        cfg = TrainConfig(num_trees=15, num_layers=4)
        result = GBDT(cfg).fit(train, valid, early_stopping_rounds=50)
        values = [e.metric_value for e in result.evals]
        assert values[result.best_iteration] == max(values)

    def test_requires_validation_set(self, small_binary):
        cfg = TrainConfig(num_trees=5)
        with pytest.raises(ValueError, match="validation"):
            GBDT(cfg).fit(small_binary, early_stopping_rounds=2)

    def test_rejects_bad_rounds(self, small_binary):
        train, valid = small_binary.split(0.8, seed=3)
        cfg = TrainConfig(num_trees=5)
        with pytest.raises(ValueError, match="rounds"):
            GBDT(cfg).fit(train, valid, early_stopping_rounds=0)

    def test_metric_direction(self):
        assert metric_improved("auc", 0.9, 0.8)
        assert not metric_improved("auc", 0.7, 0.8)
        assert metric_improved("rmse", 0.1, 0.2)
        assert not metric_improved("rmse", 0.3, 0.2)


class TestLeafwiseGrowth:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="growth"):
            TrainConfig(growth="breadthwise")
        with pytest.raises(ValueError, match="max_leaves"):
            TrainConfig(max_leaves=-1)

    def test_effective_max_leaves(self):
        assert TrainConfig(num_layers=5).effective_max_leaves == 16
        assert TrainConfig(max_leaves=7).effective_max_leaves == 7

    def test_leaf_budget_respected(self, small_binary):
        cfg = TrainConfig(num_trees=2, num_layers=8, num_candidates=16,
                          growth="leafwise", max_leaves=6)
        result = GBDT(cfg).fit(small_binary)
        for tree in result.ensemble.trees:
            assert tree.num_leaves <= 6

    def test_depth_still_bounded(self, small_binary):
        cfg = TrainConfig(num_trees=1, num_layers=3, num_candidates=16,
                          growth="leafwise", max_leaves=64)
        result = GBDT(cfg).fit(small_binary)
        tree = result.ensemble.trees[0]
        assert max(tree.nodes) <= 6  # 3 layers -> ids 0..6

    def test_learns_comparably_to_layerwise(self, small_binary):
        train, valid = small_binary.split(0.8, seed=4)
        base = TrainConfig(num_trees=8, num_layers=5, num_candidates=16)
        leaf = TrainConfig(num_trees=8, num_layers=5, num_candidates=16,
                           growth="leafwise")
        auc_layer = GBDT(base).fit(train, valid).evals[-1].metric_value
        auc_leaf = GBDT(leaf).fit(train, valid).evals[-1].metric_value
        assert abs(auc_layer - auc_leaf) < 0.03
        assert auc_leaf > 0.8

    def test_splits_in_gain_order(self, small_binary):
        """With a budget of 2 leaves, the single split must be the root's
        best split — same as the layer-wise tree's root."""
        leaf_cfg = TrainConfig(num_trees=1, num_layers=6,
                               num_candidates=16, growth="leafwise",
                               max_leaves=2)
        layer_cfg = TrainConfig(num_trees=1, num_layers=2,
                                num_candidates=16)
        t_leaf = GBDT(leaf_cfg).fit(small_binary).ensemble.trees[0]
        t_layer = GBDT(layer_cfg).fit(small_binary).ensemble.trees[0]
        s_leaf = t_leaf.nodes[0].split
        s_layer = t_layer.nodes[0].split
        assert (s_leaf.feature, s_leaf.bin) == \
            (s_layer.feature, s_layer.bin)

    def test_leaf_assignment_matches_routing(self, small_binary):
        from repro.core.gbdt import grow_tree
        from repro.core.loss import make_loss
        from repro.data.dataset import bin_dataset

        cfg = TrainConfig(num_trees=1, num_layers=5, num_candidates=16,
                          growth="leafwise", max_leaves=10)
        binned = bin_dataset(small_binary, 16)
        loss = make_loss("binary")
        grad, hess = loss.gradients(
            small_binary.labels,
            loss.init_scores(small_binary.num_instances),
        )
        tree, leaf_of_instance = grow_tree(cfg, binned, grad, hess)
        routed = tree.assign_leaves(small_binary.csc())
        np.testing.assert_array_equal(leaf_of_instance, routed)
