"""Metric tests against closed-form small cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (accuracy, auc, logloss,
                                multiclass_accuracy, rmse)


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == 1.0

    def test_inverted_scores(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc(labels, scores) == 0.0

    def test_random_scores_near_half(self, rng):
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert abs(auc(labels, scores) - 0.5) < 0.05

    def test_all_ties_is_half(self):
        labels = np.array([0, 1, 0, 1])
        assert auc(labels, np.full(4, 0.7)) == pytest.approx(0.5)

    def test_known_value(self):
        # 1 positive ranked above 1 of 2 negatives: AUC = 0.5
        labels = np.array([1, 0, 0])
        scores = np.array([0.5, 0.3, 0.7])
        assert auc(labels, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="both classes"):
            auc(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            auc(np.array([0, 1]), np.array([0.1]))

    def test_matches_pair_counting(self, rng):
        labels = rng.integers(0, 2, size=200)
        if labels.sum() in (0, 200):
            labels[0] = 1 - labels[0]
        scores = rng.standard_normal(200)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (pos.size * neg.size)
        assert auc(labels, scores) == pytest.approx(expected)


class TestAccuracy:
    def test_exact(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == \
            pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_multiclass_argmax(self):
        probs = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert multiclass_accuracy(np.array([1, 0]), probs) == 1.0

    def test_multiclass_rejects_1d(self):
        with pytest.raises(ValueError):
            multiclass_accuracy(np.array([0]), np.array([0.5]))


class TestRMSE:
    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == \
            pytest.approx(np.sqrt(12.5))

    def test_zero_for_exact(self, rng):
        y = rng.standard_normal(50)
        assert rmse(y, y) == 0.0


class TestLogLoss:
    def test_known_value(self):
        labels = np.array([1, 0])
        probs = np.array([0.8, 0.4])
        expected = -(np.log(0.8) + np.log(0.6)) / 2
        assert logloss(labels, probs) == pytest.approx(expected)

    def test_clipping_avoids_inf(self):
        assert np.isfinite(logloss(np.array([1]), np.array([0.0])))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_auc_invariant_to_monotone_transform(seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=100)
    if labels.sum() in (0, 100):
        labels[0] = 1 - labels[0]
    scores = rng.standard_normal(100)
    base = auc(labels, scores)
    assert auc(labels, 3 * scores + 7) == pytest.approx(base)
    assert auc(labels, np.tanh(scores)) == pytest.approx(base)
