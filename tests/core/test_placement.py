"""Placement computation tests (node splitting, Section 2.2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.indexing import NodeToInstanceIndex
from repro.core.placement import (layer_placements_colstore,
                                  layer_placements_rowstore,
                                  rowstore_search_keys)
from repro.core.split import SplitInfo
from repro.data.matrix import CSRMatrix


@pytest.fixture
def binned_shard(rng):
    """Small binned CSR with known dense view (-1 = missing)."""
    dense = np.full((30, 5), -1, dtype=np.int64)
    mask = rng.random((30, 5)) < 0.6
    dense[mask] = rng.integers(0, 6, size=mask.sum())
    rows = []
    for i in range(30):
        cols = np.flatnonzero(dense[i] >= 0)
        rows.append([(int(c), int(dense[i, c])) for c in cols])
    return CSRMatrix.from_rows(rows, 5, dtype=np.int32), dense


def expected_go_left(dense, rows, feature, bin_id, default_left):
    out = []
    for r in rows:
        value = dense[r, feature]
        out.append(default_left if value < 0 else value <= bin_id)
    return np.array(out)


class TestSearchKeys:
    def test_keys_sorted_and_unique(self, binned_shard):
        shard, _ = binned_shard
        keys = rowstore_search_keys(shard)
        assert np.all(np.diff(keys) > 0)
        assert keys.size == shard.nnz

    def test_key_lookup_roundtrip(self, binned_shard):
        shard, dense = binned_shard
        keys = rowstore_search_keys(shard)
        width = shard.num_cols + 1
        for row in range(30):
            for feature in range(5):
                key = row * width + feature
                pos = np.searchsorted(keys, key)
                present = pos < keys.size and keys[pos] == key
                assert present == (dense[row, feature] >= 0)


class TestRowstorePlacements:
    @pytest.mark.parametrize("default_left", [False, True])
    def test_matches_dense_semantics(self, binned_shard, default_left):
        shard, dense = binned_shard
        index = NodeToInstanceIndex(30)
        split = SplitInfo(feature=2, bin=3, default_left=default_left,
                          gain=1.0)
        placements = layer_placements_rowstore(shard, index, {0: split})
        np.testing.assert_array_equal(
            placements[0],
            expected_go_left(dense, range(30), 2, 3, default_left),
        )

    def test_multiple_nodes_one_pass(self, binned_shard, rng):
        shard, dense = binned_shard
        index = NodeToInstanceIndex(30)
        index.split_node(0, rng.random(30) < 0.5, 1, 2)
        splits = {
            1: SplitInfo(0, 2, False, 1.0),
            2: SplitInfo(4, 1, True, 1.0),
        }
        placements = layer_placements_rowstore(shard, index, splits)
        for node, split in splits.items():
            np.testing.assert_array_equal(
                placements[node],
                expected_go_left(dense, index.rows_of(node),
                                 split.feature, split.bin,
                                 split.default_left),
            )

    def test_precomputed_keys_equal_on_the_fly(self, binned_shard):
        shard, _ = binned_shard
        index = NodeToInstanceIndex(30)
        split = {0: SplitInfo(1, 2, False, 1.0)}
        a = layer_placements_rowstore(shard, index, split)
        b = layer_placements_rowstore(
            shard, index, split, search_keys=rowstore_search_keys(shard)
        )
        np.testing.assert_array_equal(a[0], b[0])

    def test_foreign_features_skipped(self, binned_shard):
        """Vertical partitioning: splits on features outside the shard
        produce no placement (another worker owns them)."""
        shard, _ = binned_shard
        index = NodeToInstanceIndex(30)
        split = {0: SplitInfo(feature=100, bin=1, default_left=False,
                              gain=1.0)}
        assert layer_placements_rowstore(shard, index, split) == {}

    def test_colstore_agrees_with_rowstore(self, binned_shard):
        shard, dense = binned_shard
        index = NodeToInstanceIndex(30)
        split = {0: SplitInfo(3, 2, True, 1.0)}
        row_p = layer_placements_rowstore(shard, index, split)
        col_p = layer_placements_colstore(shard.to_csc(), index, split)
        np.testing.assert_array_equal(row_p[0], col_p[0])
