"""Tree structure and prediction tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.split import SplitInfo
from repro.core.tree import (Tree, TreeEnsemble, layer_nodes, layer_of)
from repro.data.matrix import CSRMatrix


def build_stump(default_left=False):
    """value(feature 0) <= 0.5 -> leaf [+1], else leaf [-1]."""
    tree = Tree(num_layers=2, gradient_dim=1)
    tree.set_split(0, SplitInfo(0, 0, default_left, 1.0), threshold=0.5)
    tree.set_leaf(1, np.array([1.0]))
    tree.set_leaf(2, np.array([-1.0]))
    return tree


class TestLayout:
    def test_layer_of(self):
        assert layer_of(0) == 0
        assert layer_of(1) == layer_of(2) == 1
        assert layer_of(3) == layer_of(6) == 2

    def test_layer_nodes(self):
        assert list(layer_nodes(0)) == [0]
        assert list(layer_nodes(2)) == [3, 4, 5, 6]

    def test_children_ids(self):
        tree = build_stump()
        assert tree.node(0).left_child == 1
        assert tree.node(0).right_child == 2


class TestConstruction:
    def test_leaf_dim_checked(self):
        tree = Tree(2, 3)
        with pytest.raises(ValueError, match="dim"):
            tree.set_leaf(0, np.array([1.0]))

    def test_double_split_rejected(self):
        tree = build_stump()
        with pytest.raises(ValueError, match="already split"):
            tree.set_split(0, SplitInfo(1, 0, False, 1.0), 0.0)

    def test_too_shallow_rejected(self):
        with pytest.raises(ValueError):
            Tree(1, 1)

    def test_counts(self):
        tree = build_stump()
        assert tree.num_leaves == 2
        assert tree.num_splits == 1
        assert len(tree.internal_nodes()) == 1


class TestPrediction:
    def test_threshold_routing(self):
        tree = build_stump()
        features = CSRMatrix.from_dense(
            np.array([[0.3], [0.5], [0.7]])
        ).to_csc()
        np.testing.assert_allclose(
            tree.predict(features).ravel(), [1.0, 1.0, -1.0]
        )

    def test_missing_goes_default(self):
        features = CSRMatrix.from_rows([[], [(0, 0.2)]], 1).to_csc()
        right = build_stump(default_left=False)
        np.testing.assert_allclose(right.predict(features).ravel(),
                                   [-1.0, 1.0])
        left = build_stump(default_left=True)
        np.testing.assert_allclose(left.predict(features).ravel(),
                                   [1.0, 1.0])

    def test_two_layer_routing(self):
        tree = Tree(3, 1)
        tree.set_split(0, SplitInfo(0, 0, False, 1.0), threshold=0.0)
        tree.set_split(1, SplitInfo(1, 0, False, 1.0), threshold=0.0)
        tree.set_leaf(2, np.array([9.0]))
        tree.set_leaf(3, np.array([1.0]))
        tree.set_leaf(4, np.array([2.0]))
        dense = np.array([
            [-1.0, -1.0],   # left, left -> 1
            [-1.0, 1.0],    # left, right -> 2
            [1.0, 5.0],     # right -> 9
        ])
        features = CSRMatrix.from_dense(dense).to_csc()
        np.testing.assert_allclose(
            tree.predict(features).ravel(), [1.0, 2.0, 9.0]
        )

    def test_assign_leaves(self):
        tree = build_stump()
        features = CSRMatrix.from_dense(np.array([[0.1], [0.9]])).to_csc()
        np.testing.assert_array_equal(tree.assign_leaves(features), [1, 2])

    def test_predict_row_matches_batch(self, rng):
        tree = Tree(3, 1)
        tree.set_split(0, SplitInfo(2, 0, True, 1.0), threshold=0.1)
        tree.set_split(1, SplitInfo(0, 0, False, 1.0), threshold=-0.3)
        tree.set_leaf(2, np.array([5.0]))
        tree.set_leaf(3, np.array([-1.0]))
        tree.set_leaf(4, np.array([1.0]))
        dense = rng.standard_normal((20, 4))
        dense[rng.random((20, 4)) < 0.3] = 0.0
        csr = CSRMatrix.from_dense(dense)
        batch = tree.predict(csr.to_csc())
        for i in range(20):
            cols, vals = csr.row(i)
            np.testing.assert_allclose(tree.predict_row(cols, vals),
                                       batch[i])

    def test_vector_leaves(self):
        tree = Tree(2, 3)
        tree.set_split(0, SplitInfo(0, 0, False, 1.0), threshold=0.0)
        tree.set_leaf(1, np.array([1.0, 2.0, 3.0]))
        tree.set_leaf(2, np.array([-1.0, -2.0, -3.0]))
        features = CSRMatrix.from_dense(np.array([[-1.0], [1.0]])).to_csc()
        out = tree.predict(features)
        np.testing.assert_allclose(out[0], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(out[1], [-1.0, -2.0, -3.0])


class TestEnsemble:
    def test_raw_scores_sum_with_shrinkage(self):
        ensemble = TreeEnsemble(gradient_dim=1, learning_rate=0.5)
        ensemble.append(build_stump())
        ensemble.append(build_stump())
        features = CSRMatrix.from_dense(np.array([[0.1]])).to_csc()
        assert ensemble.raw_scores(features)[0, 0] == pytest.approx(1.0)
        assert ensemble.raw_scores(features, num_trees=1)[0, 0] == \
            pytest.approx(0.5)

    def test_dim_mismatch(self):
        ensemble = TreeEnsemble(gradient_dim=2, learning_rate=0.1)
        with pytest.raises(ValueError):
            ensemble.append(build_stump())

    def test_len(self):
        ensemble = TreeEnsemble(1, 0.1)
        assert len(ensemble) == 0
        ensemble.append(build_stump())
        assert len(ensemble) == 1
