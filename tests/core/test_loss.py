"""Loss tests: gradients checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loss import (LogisticLoss, SoftmaxLoss, SquareLoss,
                             make_loss, sigmoid, softmax)


def finite_diff_grad(loss, labels, scores, eps=1e-6):
    """Numerical gradient of the mean loss, rescaled per instance."""
    num = np.zeros_like(scores)
    for i in range(scores.shape[0]):
        for c in range(scores.shape[1]):
            plus = scores.copy()
            plus[i, c] += eps
            minus = scores.copy()
            minus[i, c] -= eps
            num[i, c] = (loss.loss(labels, plus)
                         - loss.loss(labels, minus)) / (2 * eps)
    return num * scores.shape[0]  # loss() averages over instances


class TestFactory:
    def test_known_objectives(self):
        assert isinstance(make_loss("binary"), LogisticLoss)
        assert isinstance(make_loss("multiclass", 4), SoftmaxLoss)
        assert isinstance(make_loss("regression"), SquareLoss)

    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            make_loss("hinge")

    def test_softmax_needs_classes(self):
        with pytest.raises(ValueError):
            SoftmaxLoss(2)


class TestHelpers:
    def test_sigmoid_range_and_stability(self):
        x = np.array([-1e6, -10.0, 0.0, 10.0, 1e6])
        p = sigmoid(x)
        assert np.all((p >= 0) & (p <= 1))
        assert p[2] == 0.5
        assert np.isfinite(p).all()

    def test_softmax_rows_sum_to_one(self, rng):
        scores = rng.standard_normal((50, 7)) * 30
        p = softmax(scores)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert np.isfinite(p).all()


class TestLogisticLoss:
    def test_gradient_matches_finite_difference(self, rng):
        loss = LogisticLoss()
        labels = rng.integers(0, 2, size=12)
        scores = rng.standard_normal((12, 1))
        grad, hess = loss.gradients(labels, scores)
        np.testing.assert_allclose(
            grad, finite_diff_grad(loss, labels, scores), atol=1e-5
        )
        assert np.all(hess > 0)

    def test_zero_scores_gradient(self):
        loss = LogisticLoss()
        labels = np.array([0, 1])
        grad, hess = loss.gradients(labels, np.zeros((2, 1)))
        np.testing.assert_allclose(grad.ravel(), [0.5, -0.5])
        np.testing.assert_allclose(hess.ravel(), [0.25, 0.25])

    def test_predict_is_probability(self, rng):
        loss = LogisticLoss()
        p = loss.predict(rng.standard_normal((20, 1)) * 5)
        assert p.shape == (20,)
        assert np.all((p > 0) & (p < 1))

    def test_perfect_predictions_low_loss(self):
        loss = LogisticLoss()
        labels = np.array([0, 1, 1])
        scores = np.array([[-20.0], [20.0], [20.0]])
        assert loss.loss(labels, scores) < 1e-6


class TestSoftmaxLoss:
    def test_gradient_matches_finite_difference(self, rng):
        loss = SoftmaxLoss(4)
        labels = rng.integers(0, 4, size=8)
        scores = rng.standard_normal((8, 4))
        grad, _ = loss.gradients(labels, scores)
        np.testing.assert_allclose(
            grad, finite_diff_grad(loss, labels, scores), atol=1e-5
        )

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxLoss(5)
        labels = rng.integers(0, 5, size=30)
        grad, _ = loss.gradients(labels, rng.standard_normal((30, 5)))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_predict_shape(self, rng):
        loss = SoftmaxLoss(3)
        p = loss.predict(rng.standard_normal((10, 3)))
        assert p.shape == (10, 3)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)


class TestSquareLoss:
    def test_gradient_is_residual(self, rng):
        loss = SquareLoss()
        labels = rng.standard_normal(15)
        scores = rng.standard_normal((15, 1))
        grad, hess = loss.gradients(labels, scores)
        np.testing.assert_allclose(grad, scores - labels.reshape(-1, 1))
        np.testing.assert_allclose(hess, 1.0)

    def test_loss_value(self):
        loss = SquareLoss()
        assert loss.loss(np.array([1.0, 2.0]),
                         np.array([[1.0], [4.0]])) == pytest.approx(2.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), classes=st.integers(3, 6))
def test_property_softmax_finite_diff(seed, classes):
    rng = np.random.default_rng(seed)
    loss = SoftmaxLoss(classes)
    labels = rng.integers(0, classes, size=5)
    scores = rng.standard_normal((5, classes)) * 2
    grad, hess = loss.gradients(labels, scores)
    np.testing.assert_allclose(
        grad, finite_diff_grad(loss, labels, scores), atol=1e-4
    )
    assert np.all(hess > 0)
