"""Closed-loop deployment tests: canary, drift, rollback, promotion.

The two headline end-to-end properties, both under the
``canary-under-fire`` scenario (flash crowd + transport faults):

* a deliberately *degraded* canary (sign-flipped leaves) is detected by
  the drift monitor and auto-rolled-back, with **zero** requests served
  by the bad version after the rollback decision — asserted from the
  serving ledger, not from the controller's own claims — and a retrain
  closes the loop;
* a *healthy* canary (same-data half-size retrain) under the same seeds
  is promoted fleet-wide.

Both decision logs replay byte-identically, and the degraded episode is
pinned against a golden fixture exactly like the scenario reports.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.ledger import (format_deploy_report, load_deploy_report,
                          report_bytes, save_deploy_report)
from repro.serve.deploy import (CanaryPolicy, DeployController,
                                DriftMonitor, RollbackPolicy,
                                audit_deploy, degrade_payload,
                                run_deploy)
from repro.serve.scenarios import get_scenario

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden" \
    / "deploy_canary_v1.json"


@pytest.fixture(scope="module")
def scenario():
    return get_scenario("canary-under-fire", scale=0.25)


@pytest.fixture(scope="module")
def degraded(scenario):
    controller = DeployController(scenario, canary_model="degraded")
    return controller, controller.run()


@pytest.fixture(scope="module")
def healthy(scenario):
    controller = DeployController(scenario, canary_model="healthy")
    return controller, controller.run()


@pytest.fixture(scope="module")
def shadow(scenario):
    controller = DeployController(
        scenario, canary=CanaryPolicy(shadow=True),
        canary_model="degraded",
    )
    return controller, controller.run()


def decision_kinds(report):
    return [d["kind"] for d in report["decisions"]]


class TestPolicies:
    def test_canary_policy_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            CanaryPolicy(fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            CanaryPolicy(fraction=1.0)
        with pytest.raises(ValueError, match="canary_workers"):
            CanaryPolicy(canary_workers=0)
        with pytest.raises(ValueError, match="start_frac"):
            CanaryPolicy(start_frac=1.0)

    def test_rollback_policy_validation(self):
        with pytest.raises(ValueError, match="window"):
            RollbackPolicy(window=1)
        with pytest.raises(ValueError, match="min_labels"):
            RollbackPolicy(min_labels=0)
        with pytest.raises(ValueError, match="margins"):
            RollbackPolicy(logloss_margin=0.0)

    def test_verdict_holds_until_evidence(self):
        policy = RollbackPolicy(min_labels=10)
        thin = {"labels": 5, "logloss": 2.0, "auc": 0.1}
        fat = {"labels": 100, "logloss": 0.5, "auc": 0.9}
        assert policy.verdict(fat, thin) == "hold"
        assert policy.verdict(thin, fat) == "hold"

    def test_verdict_needs_corroborating_evidence(self):
        """Logloss AND AUC must degrade together — one noisy metric
        transiently crossing its margin must not condemn a canary."""
        policy = RollbackPolicy(min_labels=10, logloss_margin=0.3,
                                auc_margin=0.2)
        good = {"labels": 50, "logloss": 0.5, "auc": 0.9}
        bad = {"labels": 50, "logloss": 0.9, "auc": 0.4}
        assert policy.verdict(good, bad) == "rollback"
        # logloss crossed, ranking still fine -> healthy
        assert policy.verdict(good, dict(bad, auc=0.85)) == "healthy"
        # ranking crossed, calibration still fine -> healthy
        assert policy.verdict(good, dict(bad, logloss=0.6)) == "healthy"

    def test_verdict_without_auc_falls_back_to_logloss(self):
        """A single-class window yields no ranking evidence; the AUC
        requirement is waived rather than treated as a veto."""
        policy = RollbackPolicy(min_labels=10, logloss_margin=0.3)
        good = {"labels": 50, "logloss": 0.5, "auc": None}
        bad = {"labels": 50, "logloss": 0.9, "auc": None}
        assert policy.verdict(good, bad) == "rollback"
        assert policy.verdict(good, dict(bad, logloss=0.7)) == "healthy"


class TestDriftMonitor:
    def test_window_is_bounded(self):
        monitor = DriftMonitor(window=4)
        for i in range(10):
            monitor.observe(1, i % 2, 0.5)
        snap = monitor.snapshot(1)
        assert snap["window"] == 4 and snap["labels"] == 10

    def test_auc_needs_both_classes(self):
        monitor = DriftMonitor(window=8)
        monitor.observe(1, 1, 0.9)
        monitor.observe(1, 1, 0.8)
        assert monitor.auc(1) is None
        monitor.observe(1, 0, 0.1)
        assert monitor.auc(1) == 1.0

    def test_logloss_separates_good_from_backwards(self):
        monitor = DriftMonitor(window=32)
        rng = np.random.default_rng(0)
        for _ in range(32):
            label = int(rng.random() < 0.5)
            prob = 0.9 if label else 0.1
            monitor.observe(1, label, prob)     # calibrated
            monitor.observe(2, label, 1 - prob)  # exactly backwards
        assert monitor.logloss(2) - monitor.logloss(1) > 1.0
        assert monitor.auc(1) > 0.95 and monitor.auc(2) < 0.05

    def test_unseen_version(self):
        monitor = DriftMonitor()
        assert monitor.logloss(7) is None and monitor.auc(7) is None
        assert monitor.snapshot(7)["window"] == 0


class TestDegradePayload:
    def test_flips_every_leaf_and_nothing_else(self, degraded):
        controller, _ = degraded
        original = controller.registry.get(1).payload
        broken = degrade_payload(original)
        assert broken is not original
        for tree, btree in zip(original["trees"], broken["trees"]):
            for key, node in tree["nodes"].items():
                if "weight" in node:
                    assert btree["nodes"][key]["weight"] == \
                        [-w for w in node["weight"]]
                else:
                    assert btree["nodes"][key] == node

    def test_degraded_model_scores_backwards(self, degraded):
        controller, _ = degraded
        rows = np.random.default_rng(3).standard_normal(
            (32, controller.scenario.num_features))
        raw_good = controller.registry.get(1).compiled.raw_scores(rows)
        raw_bad = controller.registry.get(2).compiled.raw_scores(rows)
        np.testing.assert_allclose(raw_bad, -raw_good)


class TestRouterValidation:
    def test_canary_pool_must_leave_an_incumbent(self, degraded):
        controller, _ = degraded
        scenario = controller.scenario
        bad = DeployController(
            scenario,
            canary=CanaryPolicy(canary_workers=scenario.num_workers),
            canary_model="degraded",
        )
        with pytest.raises(ValueError, match="incumbent worker"):
            bad.run()

    def test_canary_model_validated(self, scenario):
        with pytest.raises(ValueError, match="canary_model"):
            DeployController(scenario, canary_model="mediocre")


class TestDegradedEpisode:
    def test_verdict_and_decision_order(self, degraded):
        _, report = degraded
        assert report["verdict"] == "rollback"
        assert decision_kinds(report) == [
            "deploy", "canary-start", "rollback", "retrain",
        ]

    def test_monitor_condemned_the_canary(self, degraded):
        _, report = degraded
        incumbent = report["monitor"]["1"]
        canary = report["monitor"]["2"]
        margin = report["policy"]["rollback"]["logloss_margin"]
        assert canary["logloss"] - incumbent["logloss"] > margin
        assert incumbent["auc"] - canary["auc"] > 0.15

    def test_zero_canary_batches_after_rollback_decision(self, degraded):
        controller, report = degraded
        rollback = next(d for d in report["decisions"]
                        if d["kind"] == "rollback")
        served_by_canary = [
            b for b in controller.serving_report.batches
            if b.model_version == 2
        ]
        assert served_by_canary, "the canary must have served first"
        assert all(b.batch_id < rollback["batch_seq"]
                   for b in served_by_canary)

    def test_invariants_all_hold(self, degraded):
        _, report = degraded
        assert all(report["invariants"].values()), report["invariants"]

    def test_registry_end_state(self, degraded):
        controller, report = degraded
        assert report["registry"]["stages"] == {
            "1": "active", "2": "retired", "3": "canary",
        }
        assert report["versions"]["retrained"] == 3
        # a condemned model can never come back
        with pytest.raises(ValueError, match="refusing to re-stage"):
            controller.registry.stage_canary(2)

    def test_rollback_redeploys_incumbent_everywhere(self, degraded):
        controller, _ = degraded
        assert controller.replicas.deployed_versions() == \
            [1] * controller.scenario.num_workers

    def test_wire_kinds_present(self, degraded):
        _, report = degraded
        kinds = set(report["wire"]["bytes_by_kind"])
        assert {"deploy:model", "deploy:canary", "deploy:rollback",
                "deploy:decision"} <= kinds
        assert report["wire"]["retry_bytes"] > 0  # faults were live

    def test_byte_identical_replay(self, scenario, degraded):
        _, report = degraded
        again = run_deploy(scenario, canary_model="degraded")
        assert report_bytes(again) == report_bytes(report)


class TestHealthyEpisode:
    def test_promoted_and_rolled_out(self, healthy):
        controller, report = healthy
        assert report["verdict"] == "promote"
        assert decision_kinds(report) == [
            "deploy", "canary-start", "promote",
        ]
        assert controller.registry.active.version == 2
        assert controller.replicas.deployed_versions() == \
            [2] * controller.scenario.num_workers
        assert report["registry"]["stages"] == {
            "1": "published", "2": "active",
        }

    def test_split_near_target(self, healthy):
        _, report = healthy
        split = report["split"]
        n = split["window_batches"]
        p = split["target_fraction"]
        sigma = (p * (1 - p) / n) ** 0.5
        assert abs(split["observed_fraction"] - p) < 4 * sigma + 1e-9

    def test_invariants_and_byte_identity(self, scenario, healthy):
        _, report = healthy
        assert all(report["invariants"].values())
        again = run_deploy(scenario, canary_model="healthy")
        assert report_bytes(again) == report_bytes(report)


class TestShadowEpisode:
    def test_canary_never_serves(self, shadow):
        controller, report = shadow
        assert report["mode"] == "shadow"
        assert not any(b.model_version == 2
                       for b in controller.serving_report.batches)
        assert report["invariants"]["shadow_serves_incumbent_only"]

    def test_shadow_still_detects_drift(self, shadow):
        _, report = shadow
        assert report["verdict"] == "rollback"
        assert report["monitor"]["2"]["labels"] > 0
        assert report["serving"]["shadow_batches"] > 0
        assert report["serving"]["shadow_rows"] > 0

    def test_shadow_bills_canary_compute(self, shadow):
        controller, _ = shadow
        # the canary worker's clock advanced even though it served no
        # batch — shadow capacity cost is real
        canary_worker = controller.router.canary_pool[0]
        assert controller.replicas._free[canary_worker] > 0.0


class TestLedgerAudit:
    def test_tampered_history_is_caught(self, degraded):
        """The audit must fail when the ledger contradicts the log."""
        controller, report = degraded
        serving = controller.serving_report
        rollback_seq = next(d["batch_seq"] for d in report["decisions"]
                            if d["kind"] == "rollback")
        forged = next(b for b in serving.batches
                      if b.model_version == 2)
        import dataclasses as dc
        serving.batches.append(
            dc.replace(forged, batch_id=rollback_seq + 1))
        try:
            audit = audit_deploy(serving, report["decisions"], 1, 2,
                                 shadow=False)
            assert not audit["no_canary_after_rollback"]
        finally:
            serving.batches.pop()

    def test_split_rederived_from_ledger_alone(self, degraded):
        controller, report = degraded
        audit = audit_deploy(controller.serving_report,
                             report["decisions"], 1, 2, shadow=False)
        assert audit["split"] == {
            k: report["split"][k]
            for k in ("window_batches", "canary_batches",
                      "observed_fraction")
        }


class TestGoldenFixture:
    """``deploy_canary_v1.json`` pins the degraded episode byte-for-byte.

    Regenerate (only for a deliberate, reviewed format change) with::

        PYTHONPATH=src python -m repro.cli deploy --scale 0.25 \\
            --report-out tests/data/golden/deploy_canary_v1.json
    """

    def test_matches_byte_for_byte(self, degraded):
        _, report = degraded
        assert report_bytes(report) == GOLDEN.read_bytes()

    def test_fixture_parses_and_verdicts(self):
        fixture = json.loads(GOLDEN.read_text())
        assert fixture["schema"] == "deploy-report/v1"
        assert fixture["verdict"] == "rollback"
        assert all(fixture["invariants"].values())


class TestReportIO:
    def test_save_load_roundtrip(self, degraded, tmp_path):
        _, report = degraded
        path = tmp_path / "deploy.json"
        save_deploy_report(report, str(path))
        assert load_deploy_report(str(path)) == json.loads(
            json.dumps(report))

    def test_save_rejects_wrong_schema(self, tmp_path):
        with pytest.raises(ValueError, match="not a deploy report"):
            save_deploy_report({"schema": "nope"},
                               str(tmp_path / "x.json"))

    def test_format_mentions_the_story(self, degraded):
        _, report = degraded
        text = format_deploy_report(report)
        assert "verdict: rollback" in text
        assert "drift monitor" in text
        assert "deploy:rollback" in text
        assert "VIOLATED" not in text
