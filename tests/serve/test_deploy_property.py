"""Property tests for the mixed-version invariant and the canary split.

Hypothesis drives the :class:`CanaryRouter` directly over a lightweight
harness (pre-trained module-scoped models, synthetic traces) so each
example costs milliseconds: whatever the split fraction, routing seed,
fleet partition, or shadow flag, every request is served by exactly one
version, canary traffic exists only inside the canary window, and the
observed split — re-derived from the serving ledger alone via
:func:`audit_deploy` — stays inside binomial bounds of the policy
fraction.

The pinned chaos specs then run the *full* controller under distinct
fault schedules: the degraded canary must still be condemned, every
ledger invariant must hold, and the decision log must replay
byte-identically — fault injection may slow the episode down, but it
must never corrupt the verdict or the accounting.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, GBDT, TrainConfig
from repro.core.serialize import ensemble_to_dict
from repro.ledger import report_bytes
from repro.serve import (BatchPolicy, CanaryPolicy, CanaryRouter,
                         DriftMonitor, MicroBatcher, ModelRegistry,
                         ReplicaSet, RollbackPolicy, audit_deploy,
                         emit_labels, synthetic_trace)
from repro.serve.deploy import (CANARY_KIND, ROLLBACK_KIND,
                                DeployController, degrade_payload)
from repro.serve.scenarios import get_scenario


@pytest.fixture(scope="module")
def models(small_binary):
    incumbent = GBDT(TrainConfig(
        num_trees=3, num_layers=4, num_candidates=8,
    )).fit(small_binary).ensemble
    return incumbent, degrade_payload(ensemble_to_dict(incumbent))


def run_episode(models, fraction, seed, num_workers=3,
                canary_workers=1, shadow=False):
    """One router-level episode; returns (router, serving, decisions)."""
    incumbent, broken = models
    registry = ModelRegistry()
    registry.publish(incumbent)
    registry.publish(broken)
    registry.stage_canary(2)
    replicas = ReplicaSet(
        registry, ClusterConfig(num_workers=num_workers),
        service_model=lambda k: 0.0004 + 1e-5 * k,
    )
    trace = synthetic_trace(
        300, registry.get(1).compiled.num_features, 5000.0, seed=seed,
    )
    labels = emit_labels(trace, registry.get(1).compiled,
                         mean_delay_s=0.01, seed=seed)
    monitor = DriftMonitor(window=64)
    router = CanaryRouter(
        replicas, monitor,
        CanaryPolicy(fraction=fraction, canary_workers=canary_workers,
                     shadow=shadow, seed=seed),
        # margins high enough that the episode runs its whole course —
        # the split property needs the full canary window
        RollbackPolicy(window=64, min_labels=20, logloss_margin=50.0,
                       auc_margin=0.999),
        labels, 1, 2, canary_compiled=registry.get(2).compiled,
    )

    def on_rollback(at_s):
        registry.roll_back(2)
        replicas.deploy(1, at_s=at_s, workers=router.canary_pool,
                        kind=ROLLBACK_KIND)

    router.on_rollback = on_rollback
    replicas.deploy(1)

    def start_canary(at_s):
        replicas.deploy(2, at_s=at_s, workers=router.canary_pool,
                        kind=CANARY_KIND)
        router.mark_canary_started(at_s)

    serving = MicroBatcher(
        router, BatchPolicy(max_batch_size=8, max_delay_s=0.002),
    ).run(trace, swaps=[(float(trace.arrivals[20]), start_canary)])
    decisions = [{"kind": "canary-start",
                  "batch_seq": router.canary_start_seq}]
    if router.rolled_back:
        decisions.append({"kind": "rollback",
                          "batch_seq": router.rollback_seq})
    return router, serving, decisions


class TestMixedVersionProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        fraction=st.floats(0.05, 0.95),
        seed=st.integers(0, 2**20),
        num_workers=st.integers(2, 5),
        shadow=st.booleans(),
    )
    def test_one_version_per_request_and_split_in_bounds(
            self, models, fraction, seed, num_workers, shadow):
        canary_workers = max(1, num_workers - 2)
        router, serving, decisions = run_episode(
            models, fraction, seed, num_workers=num_workers,
            canary_workers=canary_workers, shadow=shadow,
        )
        # conservation: every request accounted exactly once
        ids = [r.request_id for r in serving.records] \
            + [d.request_id for d in serving.dropped]
        assert sorted(ids) == list(range(300))
        audit = audit_deploy(serving, decisions, 1, 2, shadow=shadow)
        assert audit["single_version_per_request"]
        assert audit["no_canary_before_start"]
        assert audit["no_canary_after_rollback"]
        assert audit["shadow_serves_incumbent_only"]
        split = audit["split"]
        if shadow:
            assert split["canary_batches"] == 0
        elif split["window_batches"] >= 20:
            n, p = split["window_batches"], fraction
            sigma = (p * (1 - p) / n) ** 0.5
            assert abs(split["observed_fraction"] - p) \
                <= 4 * sigma + 1e-9


#: distinct fault schedules for the full-controller chaos battery
CHAOS_SPECS = [
    "3:drop=0.3",
    "17:timeout=0.2,drop=0.1",
    "29:drop=0.15,timeout=0.15,retries=6",
]


class TestChaosSeeds:
    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_faults_never_corrupt_the_verdict(self, spec):
        scenario = dataclasses.replace(
            get_scenario("canary-under-fire", scale=0.25), faults=spec)
        report = DeployController(scenario,
                                  canary_model="degraded").run()
        assert report["verdict"] == "rollback"
        assert all(report["invariants"].values()), report["invariants"]
        assert report["wire"]["retry_bytes"] > 0
        again = DeployController(scenario, canary_model="degraded").run()
        assert report_bytes(again) == report_bytes(report)

    def test_chaos_split_rederives_from_ledger(self):
        scenario = dataclasses.replace(
            get_scenario("canary-under-fire", scale=0.25),
            faults=CHAOS_SPECS[0])
        controller = DeployController(scenario, canary_model="degraded")
        report = controller.run()
        audit = audit_deploy(controller.serving_report,
                             report["decisions"], 1, 2, shadow=False)
        assert audit["split"]["observed_fraction"] == \
            report["split"]["observed_fraction"]
