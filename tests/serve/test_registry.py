"""Model-registry tests: versioning, checksums, hot-swap, rollback."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.serialize import (ensemble_to_dict, payload_checksum,
                                  save_ensemble)
from repro.serve import ModelRegistry


@pytest.fixture(scope="module")
def models(small_binary):
    big = GBDT(TrainConfig(num_trees=4, num_layers=4,
                           num_candidates=8)).fit(small_binary).ensemble
    small = GBDT(TrainConfig(num_trees=2, num_layers=3,
                             num_candidates=8)).fit(small_binary).ensemble
    return big, small


class TestPublish:
    def test_first_publish_auto_activates(self, models):
        registry = ModelRegistry()
        entry = registry.publish(models[0])
        assert entry.version == 1
        assert registry.active is entry
        assert len(registry) == 1

    def test_later_publish_does_not_swap(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        second = registry.publish(models[1])
        assert second.version == 2
        assert registry.active.version == 1

    def test_checksum_matches_serializer(self, models):
        registry = ModelRegistry()
        entry = registry.publish(models[0])
        payload = ensemble_to_dict(models[0])
        assert entry.checksum == payload_checksum(payload)
        assert entry.nbytes > 0
        assert entry.objective == "binary"
        assert "sha256:" in str(entry)

    def test_publish_payload_dict(self, models):
        registry = ModelRegistry()
        entry = registry.publish(ensemble_to_dict(models[0]))
        assert entry.compiled.num_trees == len(models[0])

    def test_publish_file_and_checksum_guard(self, models, tmp_path):
        path = tmp_path / "model.json"
        save_ensemble(models[0], path)
        expected = payload_checksum(json.loads(path.read_text()))
        registry = ModelRegistry()
        entry = registry.publish_file(path, expected_checksum=expected)
        assert entry.source == str(path)
        assert entry.checksum == expected
        with pytest.raises(ValueError, match="checksum mismatch"):
            registry.publish_file(path, expected_checksum="0" * 64)

    def test_publish_file_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(ValueError, match="not a valid model"):
            ModelRegistry().publish_file(path)

    def test_published_model_serves_exactly(self, models, small_binary):
        registry = ModelRegistry()
        entry = registry.publish(models[0])
        csc = small_binary.csc()
        np.testing.assert_array_equal(
            entry.compiled.raw_scores(csc), models[0].raw_scores(csc)
        )


class TestActivePointer:
    def test_no_active_raises(self):
        registry = ModelRegistry()
        assert not registry.has_active
        with pytest.raises(LookupError, match="no active"):
            registry.active

    def test_activate_flips_atomically(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        registry.activate(2)
        assert registry.active.version == 2
        assert registry.activation_log == [1, 2]

    def test_unknown_version(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        with pytest.raises(KeyError, match="unknown model version 7"):
            registry.activate(7)

    def test_rollback_walks_history(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        registry.activate(2)
        assert registry.rollback().version == 1
        assert registry.active.version == 1
        with pytest.raises(LookupError, match="no previous"):
            registry.rollback()

    def test_versions_listing(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        assert [v.version for v in registry.versions()] == [1, 2]
        assert "active=1" in repr(registry)


class TestDeploymentStages:
    def fresh(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        return registry

    def test_stage_flow_to_promotion(self, models):
        registry = self.fresh(models)
        assert registry.stages() == {1: "active", 2: "published"}
        registry.stage_canary(2)
        assert registry.stage_of(2) == "canary"
        registry.promote(2)
        assert registry.stages() == {1: "published", 2: "active"}
        assert registry.stage_log == [(2, "canary"), (2, "active")]
        assert registry.activation_log == [1, 2]

    def test_promote_requires_the_canary_stage(self, models):
        registry = self.fresh(models)
        with pytest.raises(ValueError, match="staged canary"):
            registry.promote(2)

    def test_stage_canary_refuses_active(self, models):
        registry = self.fresh(models)
        with pytest.raises(ValueError, match="already active"):
            registry.stage_canary(1)

    def test_roll_back_staged_canary_keeps_incumbent(self, models):
        registry = self.fresh(models)
        registry.stage_canary(2)
        left = registry.roll_back(2)
        assert left.version == 1
        assert registry.stage_of(2) == "retired"
        assert registry.active.version == 1

    def test_roll_back_active_restores_previous(self, models):
        registry = self.fresh(models)
        registry.stage_canary(2)
        registry.promote(2)
        left = registry.roll_back(2)
        assert left.version == 1 and registry.active.version == 1
        assert registry.stage_of(2) == "retired"

    def test_retired_stays_retired(self, models):
        registry = self.fresh(models)
        registry.stage_canary(2)
        registry.roll_back(2)
        with pytest.raises(ValueError, match="refusing to re-stage"):
            registry.stage_canary(2)


class TestCacheNotification:
    class SpyCache:
        def __init__(self):
            self.versions = []

        def on_version_change(self, version):
            self.versions.append(version)

    def test_every_pointer_flip_notifies(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        spy = self.SpyCache()
        registry.attach_cache(spy)
        registry.attach_cache(spy)  # idempotent
        registry.activate(2)        # hot-swap
        registry.rollback()         # plain rollback
        registry.stage_canary(2)    # no pointer change -> no call
        registry.roll_back(2)       # retire canary: notified (no-op arg)
        assert spy.versions == [2, 1, 1]
