"""Model-registry tests: versioning, checksums, hot-swap, rollback."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.serialize import (ensemble_to_dict, payload_checksum,
                                  save_ensemble)
from repro.serve import ModelRegistry


@pytest.fixture(scope="module")
def models(small_binary):
    big = GBDT(TrainConfig(num_trees=4, num_layers=4,
                           num_candidates=8)).fit(small_binary).ensemble
    small = GBDT(TrainConfig(num_trees=2, num_layers=3,
                             num_candidates=8)).fit(small_binary).ensemble
    return big, small


class TestPublish:
    def test_first_publish_auto_activates(self, models):
        registry = ModelRegistry()
        entry = registry.publish(models[0])
        assert entry.version == 1
        assert registry.active is entry
        assert len(registry) == 1

    def test_later_publish_does_not_swap(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        second = registry.publish(models[1])
        assert second.version == 2
        assert registry.active.version == 1

    def test_checksum_matches_serializer(self, models):
        registry = ModelRegistry()
        entry = registry.publish(models[0])
        payload = ensemble_to_dict(models[0])
        assert entry.checksum == payload_checksum(payload)
        assert entry.nbytes > 0
        assert entry.objective == "binary"
        assert "sha256:" in str(entry)

    def test_publish_payload_dict(self, models):
        registry = ModelRegistry()
        entry = registry.publish(ensemble_to_dict(models[0]))
        assert entry.compiled.num_trees == len(models[0])

    def test_publish_file_and_checksum_guard(self, models, tmp_path):
        path = tmp_path / "model.json"
        save_ensemble(models[0], path)
        expected = payload_checksum(json.loads(path.read_text()))
        registry = ModelRegistry()
        entry = registry.publish_file(path, expected_checksum=expected)
        assert entry.source == str(path)
        assert entry.checksum == expected
        with pytest.raises(ValueError, match="checksum mismatch"):
            registry.publish_file(path, expected_checksum="0" * 64)

    def test_publish_file_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(ValueError, match="not a valid model"):
            ModelRegistry().publish_file(path)

    def test_published_model_serves_exactly(self, models, small_binary):
        registry = ModelRegistry()
        entry = registry.publish(models[0])
        csc = small_binary.csc()
        np.testing.assert_array_equal(
            entry.compiled.raw_scores(csc), models[0].raw_scores(csc)
        )


class TestActivePointer:
    def test_no_active_raises(self):
        registry = ModelRegistry()
        assert not registry.has_active
        with pytest.raises(LookupError, match="no active"):
            registry.active

    def test_activate_flips_atomically(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        registry.activate(2)
        assert registry.active.version == 2
        assert registry.activation_log == [1, 2]

    def test_unknown_version(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        with pytest.raises(KeyError, match="unknown model version 7"):
            registry.activate(7)

    def test_rollback_walks_history(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        registry.activate(2)
        assert registry.rollback().version == 1
        assert registry.active.version == 1
        with pytest.raises(LookupError, match="no previous"):
            registry.rollback()

    def test_versions_listing(self, models):
        registry = ModelRegistry()
        registry.publish(models[0])
        registry.publish(models[1])
        assert [v.version for v in registry.versions()] == [1, 2]
        assert "active=1" in repr(registry)
