"""Tree-sharded serving: bit-identity, conservation, ledger formulas.

The headline property is exactness under partition: for any shard count
the ordered chain fold must reproduce the monolithic compiled predictor
bit for bit — on hypothesis-built adversarial ensembles, and on a model
trained by every execution plan in the registry.  The dispatch path is
then held to the collective cost model: ``serve:partial`` bytes must
equal the ring reduce-scatter closed form exactly, per batch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, GBDT, TrainConfig
from repro.cluster.comm import RingAllReduce, RingReduceScatter
from repro.config import NetworkModel
from repro.serve import (BatchPolicy, MicroBatcher, ModelRegistry,
                         PARTIAL_KIND, REDUCE_KIND, SHARD_DEPLOY_KIND,
                         ShardedReplicaSet, compile_ensemble,
                         reduce_shard_scores, shard_bounds,
                         shard_ensemble, shard_payload, synthetic_trace)
from repro.serve.registry import payload_checksum
from repro.systems.plans import PLANS

from .test_property import ensembles_and_batches


# ---------------------------------------------------------------------------
# Shard geometry
# ---------------------------------------------------------------------------

class TestShardBounds:
    def test_contiguous_cover(self):
        for trees in range(1, 12):
            for shards in range(1, 9):
                bounds = shard_bounds(trees, shards)
                assert len(bounds) == shards
                assert bounds[0][0] == 0 and bounds[-1][1] == trees
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_balanced_within_one_tree(self):
        for trees in range(1, 12):
            for shards in range(1, 9):
                sizes = [b - a for a, b in shard_bounds(trees, shards)]
                assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_trees_leaves_empty_tail(self):
        bounds = shard_bounds(3, 8)
        sizes = [b - a for a, b in bounds]
        assert sum(sizes) == 3
        assert sizes.count(0) == 5


# ---------------------------------------------------------------------------
# Bit-identity: hypothesis-built adversarial ensembles
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(case=ensembles_and_batches(), num_shards=st.integers(1, 8))
    def test_chain_fold_bit_identical(self, case, num_shards):
        ensemble, dense = case
        compiled = compile_ensemble(ensemble)
        shards = shard_ensemble(compiled, num_shards)
        assert len(shards) == num_shards
        np.testing.assert_array_equal(
            reduce_shard_scores(shards, dense),
            compiled.raw_scores(dense),
        )

    @settings(max_examples=30, deadline=None)
    @given(case=ensembles_and_batches(), num_shards=st.integers(2, 8))
    def test_shard_tree_counts_partition_the_ensemble(self, case,
                                                      num_shards):
        ensemble, _ = case
        compiled = compile_ensemble(ensemble)
        shards = shard_ensemble(compiled, num_shards)
        assert sum(s.num_trees for s in shards) == compiled.num_trees

    def test_empty_shards_are_harmless(self):
        rng = np.random.default_rng(3)
        dataset_rows = rng.standard_normal((17, 6))
        from repro.data.synthetic import make_classification

        data = make_classification(300, 6, seed=3)
        compiled = compile_ensemble(GBDT(TrainConfig(
            num_trees=2, num_layers=3, num_candidates=8,
        )).fit(data).ensemble)
        shards = shard_ensemble(compiled, 8)   # 6 of them hold no trees
        np.testing.assert_array_equal(
            reduce_shard_scores(shards, dataset_rows),
            compiled.raw_scores(dataset_rows),
        )


# ---------------------------------------------------------------------------
# Bit-identity: every execution plan's trained model
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def plan_models(binned_binary, cluster4):
    """One trained model per registry plan, published to one registry."""
    config = TrainConfig(num_trees=3, num_layers=4, num_candidates=8)
    registry = ModelRegistry()
    versions = {}
    for key in sorted(PLANS):
        result = PLANS[key].build(config, cluster4).fit(binned_binary)
        entry = registry.publish(result.ensemble, source=f"plan:{key}")
        versions[key] = entry.version
    return registry, versions


class TestEveryPlan:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 8])
    def test_sharded_scores_exact_for_all_plans(self, plan_models,
                                                num_shards):
        registry, versions = plan_models
        rng = np.random.default_rng(17)
        features = rng.standard_normal((41, 25))
        features[rng.random(features.shape) < 0.2] = np.nan
        for key, version in versions.items():
            compiled = registry.get(version).compiled
            shards = registry.shards(version, num_shards)
            np.testing.assert_array_equal(
                reduce_shard_scores(
                    [s.compiled for s in shards], features),
                compiled.raw_scores(features),
                err_msg=f"plan {key} diverged at S={num_shards}",
            )


# ---------------------------------------------------------------------------
# Registry shards: payloads, checksums, caching
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def registry(small_binary):
    registry = ModelRegistry()
    registry.publish(GBDT(TrainConfig(
        num_trees=6, num_layers=4, num_candidates=8,
    )).fit(small_binary).ensemble)
    registry.publish(GBDT(TrainConfig(
        num_trees=3, num_layers=3, num_candidates=8,
    )).fit(small_binary).ensemble)
    return registry


class TestRegistryShards:
    def test_shard_payloads_checksum_and_recompile(self, registry):
        entry = registry.get(1)
        shards = registry.shards(1, 3)
        rng = np.random.default_rng(5)
        features = rng.standard_normal((19, entry.compiled.num_features))
        for shard in shards:
            piece = shard_payload(entry.payload, shard.start_tree,
                                  shard.stop_tree)
            assert shard.checksum == payload_checksum(piece)
            assert piece["trees"] == \
                entry.payload["trees"][shard.start_tree:shard.stop_tree]
            # the sliced compiled shard serves what the payload says
            from repro.core.serialize import ensemble_from_dict

            recompiled = compile_ensemble(ensemble_from_dict(piece))
            np.testing.assert_array_equal(
                recompiled.raw_scores(features),
                shard.compiled.raw_scores(features))

    def test_shards_cached_per_version_and_count(self, registry):
        assert registry.shards(1, 2) is registry.shards(1, 2)
        assert registry.shards(1, 2) is not registry.shards(1, 4)
        assert registry.shards(2, 2) is not registry.shards(1, 2)

    def test_shard_sizes_sum_close_to_full(self, registry):
        entry = registry.get(1)
        for num_shards in (2, 4):
            shards = registry.shards(1, num_shards)
            total = sum(s.nbytes for s in shards)
            # only the few metadata keys repeat per shard
            assert entry.nbytes <= total <= entry.nbytes \
                + num_shards * 200


# ---------------------------------------------------------------------------
# Sharded dispatch through the micro-batcher
# ---------------------------------------------------------------------------

def make_fleet(registry, num_shards, workers=None, **kwargs):
    workers = workers or 2 * num_shards
    kwargs.setdefault("service_model", lambda k: 1e-4)
    return ShardedReplicaSet(
        registry, ClusterConfig(num_workers=workers),
        num_shards=num_shards, **kwargs)


def run_trace(registry, replicas, n=150, rate=5000.0, seed=2,
              policy=None):
    trace = synthetic_trace(
        n, registry.get(1).compiled.num_features, rate, seed=seed)
    replicas.deploy(1)
    report = MicroBatcher(
        replicas, policy or BatchPolicy(max_batch_size=16,
                                        max_delay_s=0.001),
    ).run(trace, collect_scores=True)
    return trace, report


class TestShardedDispatch:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_served_scores_bit_identical(self, registry, num_shards):
        replicas = make_fleet(registry, num_shards)
        trace, report = run_trace(registry, replicas)
        assert len(report.records) == trace.num_requests
        ids = np.fromiter((r.request_id for r in report.records),
                          np.int64, len(report.records))
        direct = registry.get(1).compiled.raw_scores(trace.features[ids])
        np.testing.assert_array_equal(report.scores, direct)

    def test_conservation_under_overload(self, registry):
        replicas = make_fleet(registry, 2, workers=2,
                              service_model=lambda k: 5e-3)
        trace, report = run_trace(
            registry, replicas, n=300, rate=50_000.0,
            policy=BatchPolicy(max_batch_size=8, max_delay_s=0.0005,
                               max_queue=16, overload="shed-oldest"))
        assert len(report.dropped) > 0
        assert len(report.records) + len(report.dropped) \
            == trace.num_requests

    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_partial_bytes_match_collective_closed_form(self, registry,
                                                        num_shards):
        replicas = make_fleet(registry, num_shards,
                              workers=num_shards)
        _, report = run_trace(registry, replicas)
        ring = RingReduceScatter()
        expected = sum(
            int(ring.per_worker_bytes(batch.size * 8, num_shards)
                * num_shards)
            for batch in report.batches
        )
        assert replicas.partial_bytes == expected
        assert replicas.reduce_bytes == 0   # gather mode

    def test_allreduce_charges_both_halves(self, registry):
        num_shards = 4
        replicas = make_fleet(registry, num_shards,
                              workers=num_shards,
                              reduction="allreduce")
        _, report = run_trace(registry, replicas)
        assert replicas.reduce_bytes == replicas.partial_bytes > 0
        ring = RingAllReduce()
        expected = sum(
            int(RingReduceScatter().per_worker_bytes(
                batch.size * 8, num_shards) * num_shards)
            for batch in report.batches
        ) * 2
        assert replicas.partial_bytes + replicas.reduce_bytes == expected
        assert expected == sum(
            int(ring.per_worker_bytes(batch.size * 8, num_shards) / 2
                * num_shards) * 2
            for batch in report.batches
        )

    def test_single_shard_pays_no_reduction(self, registry):
        replicas = make_fleet(registry, 1, workers=2)
        _, report = run_trace(registry, replicas)
        assert replicas.partial_bytes == 0
        assert replicas.reduce_bytes == 0
        snapshot = replicas.network.snapshot().bytes_by_kind
        assert PARTIAL_KIND not in snapshot
        assert REDUCE_KIND not in snapshot

    def test_batch_occupies_a_whole_row(self, registry):
        replicas = make_fleet(registry, 2, workers=4)
        replicas.deploy(1)
        row1_free = replicas._free[2:4].copy()
        rows = np.zeros((3, registry.get(1).compiled.num_features))
        result = replicas.dispatch(rows, 0.0)
        # both members of row 0 stay busy until the collective is done
        assert replicas._free[0] == replicas._free[1] \
            == result.completion_s
        np.testing.assert_array_equal(replicas._free[2:4],
                                      row1_free)  # row 1 untouched

    def test_mixed_version_row_rejected(self, registry):
        replicas = make_fleet(registry, 2, workers=2)
        replicas.deploy(1)
        replicas._deployed[1] = registry.shards(2, 2)[1]
        with pytest.raises(RuntimeError, match="mixed versions"):
            replicas.dispatch(np.zeros(
                (1, registry.get(1).compiled.num_features)), 0.0)


# ---------------------------------------------------------------------------
# Score codecs on the carry
# ---------------------------------------------------------------------------

class TestScoreCodec:
    def test_f16_carries_save_wire_bytes(self, registry):
        narrow = make_fleet(registry, 4, workers=4, codec="f16")
        _, report = run_trace(registry, narrow)
        ring = RingReduceScatter()
        raw_expected = sum(
            int(ring.per_worker_bytes(b.size * 8, 4) * 4)
            for b in report.batches)
        wire_expected = sum(
            int(sum(ring.per_worker_bytes(b.size * 2, 4)
                    for _ in range(4)))
            for b in report.batches)
        assert narrow.partial_bytes == wire_expected < raw_expected
        # raw accounting keeps the dense float64 baseline
        snapshot = narrow.network.snapshot()
        assert snapshot.raw_bytes_by_kind[PARTIAL_KIND] == raw_expected
        assert snapshot.codec_savings_by_kind()[
            "codec:" + PARTIAL_KIND] == raw_expected - wire_expected

    def test_lossy_carry_changes_scores_lossless_does_not(self,
                                                          registry):
        features = np.random.default_rng(9).standard_normal(
            (32, registry.get(1).compiled.num_features))
        direct = registry.get(1).compiled.raw_scores(features)
        for codec, lossless in (("none", True), ("sparse", True),
                                ("f16", False)):
            replicas = make_fleet(registry, 4, workers=4, codec=codec)
            replicas.deploy(1)
            scores = replicas.dispatch(features, 0.0).scores
            if lossless:
                np.testing.assert_array_equal(scores, direct)
            else:
                assert not np.array_equal(scores, direct)
                np.testing.assert_allclose(scores, direct, rtol=2e-3,
                                           atol=2e-3)


# ---------------------------------------------------------------------------
# Deploy accounting
# ---------------------------------------------------------------------------

class TestShardDeploy:
    def test_deploy_bytes_exact_per_shard(self, registry):
        replicas = make_fleet(registry, 2, workers=4)
        replicas.deploy(1)
        shards = registry.shards(1, 2)
        expected = 2 * sum(s.nbytes for s in shards)   # 2 rows
        assert replicas.deploy_bytes == expected
        snapshot = replicas.network.snapshot().bytes_by_kind
        assert set(snapshot) == {SHARD_DEPLOY_KIND}
        assert replicas.model_bytes_per_worker() \
            == max(s.nbytes for s in shards)
        assert replicas.deployed_versions() == [1] * 4

    def test_sharded_rollout_undercuts_replicated(self, registry):
        entry = registry.get(1)
        for num_shards in (2, 4):
            replicas = make_fleet(registry, num_shards, workers=4)
            replicas.deploy(1)
            assert replicas.deploy_bytes < 4 * entry.nbytes
            assert replicas.model_bytes_per_worker() < entry.nbytes

    def test_deploy_time_follows_network_model(self, registry):
        network = NetworkModel(bandwidth_gbps=1.0, latency_s=0.01)
        replicas = ShardedReplicaSet(
            registry,
            ClusterConfig(num_workers=2, network=network),
            num_shards=2, service_model=lambda k: 1e-4)
        replicas.deploy(1, at_s=5.0)
        shards = registry.shards(1, 2)
        expected = 5.0 + max(network.transfer_time(s.nbytes)
                             for s in shards)
        assert replicas.next_free_s() == pytest.approx(expected)

    def test_hot_swap_reshards(self, registry):
        replicas = make_fleet(registry, 2, workers=2)
        trace, report = run_trace(registry, replicas, n=100)
        swap_at = float(trace.arrivals[50])
        replicas2 = make_fleet(registry, 2, workers=2)
        trace2, report2 = None, None
        replicas2.deploy(1)
        trace2 = synthetic_trace(
            100, registry.get(1).compiled.num_features, 5000.0, seed=2)
        report2 = MicroBatcher(
            replicas2, BatchPolicy(max_batch_size=16, max_delay_s=0.001)
        ).run(trace2, swaps=[(swap_at, replicas2.deployer(2))],
              collect_scores=True)
        assert report2.versions_served() == [1, 2]
        for batch in report2.batches:
            versions = {r.model_version for r in report2.records
                        if r.batch_id == batch.batch_id}
            assert len(versions) == 1
        shards1 = registry.shards(1, 2)
        shards2 = registry.shards(2, 2)
        expected = sum(s.nbytes for s in shards1) \
            + sum(s.nbytes for s in shards2)
        assert replicas2.deploy_bytes == expected


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

class TestValidation:
    def test_workers_must_divide(self, registry):
        with pytest.raises(ValueError, match="multiple of num_shards"):
            ShardedReplicaSet(registry,
                              ClusterConfig(num_workers=3),
                              num_shards=2)

    def test_unknown_balancer_and_reduction(self, registry):
        with pytest.raises(ValueError, match="unknown balancer"):
            ShardedReplicaSet(registry, ClusterConfig(num_workers=2),
                              num_shards=2, balancer="random")
        with pytest.raises(ValueError, match="unknown reduction"):
            ShardedReplicaSet(registry, ClusterConfig(num_workers=2),
                              num_shards=2, reduction="tree")

    def test_serving_before_deploy_rejected(self, registry):
        replicas = make_fleet(registry, 2, workers=2)
        with pytest.raises(RuntimeError, match="undeployed"):
            replicas.dispatch(np.zeros((1, 4)), 0.0)

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            reduce_shard_scores([], np.zeros((1, 2)))
