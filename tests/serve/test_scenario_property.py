"""Property-based ledger invariants for randomly drawn scenarios.

Hypothesis draws small multi-tenant scenarios — fleet size, rates,
priorities, queue bound, overload policy, cache on/off — and every one
must satisfy the ledger invariants the conformance harness enforces:

* percentiles monotone: p50 <= p95 <= p99 (totals and per tenant);
* conservation: served + dropped == arrivals;
* drop_rate in [0, 1];
* cache-enabled runs serve bit-identical scores to cache-off runs
  (compared per request id — the cache changes the billing schedule,
  never a score);
* ``shed-oldest`` never drops a request while a strictly
  lower-priority request sits queued (checked by re-deriving queue
  occupancy from the ledger, not by trusting the scheduler).

The served model is trained once per module and injected into every
runner, so each hypothesis example costs only trace generation plus the
simulated replay.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GBDT, TrainConfig
from repro.data.dataset import bin_dataset
from repro.data.synthetic import make_classification
from repro.serve import ModelRegistry
from repro.serve.scenarios import (LoadShape, Scenario, ScenarioRunner,
                                   TenantSpec, audit_priority_admission)

NUM_FEATURES = 8


@pytest.fixture(scope="module")
def served():
    dataset = make_classification(400, NUM_FEATURES, density=0.8,
                                  seed=77)
    config = TrainConfig(num_trees=2, num_layers=3, num_candidates=8,
                         learning_rate=0.3)
    registry = ModelRegistry()
    registry.publish(GBDT(config).fit(dataset).ensemble,
                     source="property v1")
    return registry, bin_dataset(dataset, 8).cuts


@st.composite
def scenarios(draw):
    num_tenants = draw(st.integers(1, 4))
    tenants = tuple(
        TenantSpec(
            name=f"t{i}",
            rate_rps=float(draw(st.integers(200, 1500))),
            slo_s=draw(st.sampled_from([0.005, 0.02, 0.1])),
            priority=draw(st.integers(0, 2)),
            repeat_rate=draw(st.sampled_from([0.0, 0.4])),
        )
        for i in range(num_tenants)
    )
    shape = draw(st.sampled_from([
        LoadShape(kind="steady"),
        LoadShape(kind="diurnal", amplitude=0.7, period_s=0.1),
        LoadShape(kind="flash", flash_at_s=0.05, flash_len_s=0.05,
                  flash_x=6.0),
    ]))
    max_batch = draw(st.sampled_from([8, 32]))
    return Scenario(
        name="prop",
        seed=draw(st.integers(0, 2**20)),
        duration_s=0.15,
        tenants=tenants,
        shape=shape,
        num_features=NUM_FEATURES,
        max_batch_size=max_batch,
        max_delay_s=0.002,
        max_queue=draw(st.sampled_from([0, 48])),
        overload=draw(st.sampled_from(["reject", "shed-oldest"])),
        num_workers=draw(st.integers(1, 2)),
        service_base_s=0.002,
        service_per_row_s=0.0001,
        cache_capacity=draw(st.sampled_from([0, 256])),
    )


def run(scenario, served):
    registry, cuts = served
    runner = ScenarioRunner(scenario, registry=registry, cuts=cuts)
    return runner, runner.run()


@settings(max_examples=25, deadline=None)
@given(scenario=scenarios())
def test_ledger_invariants(scenario, served):
    runner, report = run(scenario, served)
    totals = report["totals"]

    assert totals["p50_s"] <= totals["p95_s"] <= totals["p99_s"]
    assert totals["served"] + totals["dropped"] == totals["arrivals"]
    assert 0.0 <= totals["drop_rate"] <= 1.0
    for stats in report["tenants"].values():
        assert stats["p50_s"] <= stats["p95_s"] <= stats["p99_s"]
        assert stats["served"] + stats["dropped"] == stats["arrivals"]
        assert 0.0 <= stats["drop_rate"] <= 1.0
        assert 0.0 <= stats["slo_violation_rate"] <= 1.0
    assert sum(s["arrivals"] for s in report["tenants"].values()) \
        == totals["arrivals"]

    assert report["invariants"]["scores_exact"]
    assert audit_priority_admission(runner.trace,
                                    runner.serving_report)


@settings(max_examples=10, deadline=None)
@given(scenario=scenarios())
def test_cache_is_invisible_in_the_scores(scenario, served):
    # unbounded queue: the cache changes the billing schedule, which
    # under a bounded queue can legitimately change *which* requests
    # are dropped — with no drops, both runs serve every request and
    # the per-request scores must match bit for bit
    scenario = dataclasses.replace(scenario, cache_capacity=256,
                                   max_queue=0)
    bare = dataclasses.replace(scenario, cache_capacity=0)
    with_cache = run(scenario, served)[0]
    without = run(bare, served)[0]

    def by_request(runner):
        report = runner.serving_report
        return {
            record.request_id: report.scores[pos]
            for pos, record in enumerate(report.records)
        }

    cached, direct = by_request(with_cache), by_request(without)
    assert set(cached) == set(direct)
    for rid, row in cached.items():
        np.testing.assert_array_equal(row, direct[rid])


@settings(max_examples=15, deadline=None)
@given(scenario=scenarios())
def test_shed_respects_priority_classes(scenario, served):
    scenario = dataclasses.replace(scenario, max_queue=48,
                                   overload="shed-oldest")
    runner, report = run(scenario, served)
    trace, ledger = runner.trace, runner.serving_report
    assert audit_priority_admission(trace, ledger)
    # every shed victim belonged to the lowest class among the requests
    # dropped or served after it arrived — spot-check the attribution
    for drop in ledger.dropped:
        assert drop.tenant == trace.tenant_of(drop.request_id)
        assert drop.priority == trace.priority_of(drop.request_id)
