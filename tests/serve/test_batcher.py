"""Micro-batcher tests: policy triggers, simulated schedules, ledgers.

All scheduling tests use a deterministic ``service_model`` so every
simulated timestamp is computable by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.serve import (BatchPolicy, MicroBatcher, ModelRegistry,
                         ModelServer, RequestTrace, compile_ensemble,
                         synthetic_trace)


def trace_at(times, num_features=3):
    """A trace with hand-placed arrival times and arange features."""
    times = np.asarray(times, dtype=np.float64)
    features = np.arange(
        times.size * num_features, dtype=np.float64
    ).reshape(times.size, num_features)
    return RequestTrace(features=features, arrivals=times)


@pytest.fixture(scope="module")
def model(small_binary):
    cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=8)
    return GBDT(cfg).fit(small_binary).ensemble


@pytest.fixture(scope="module")
def compiled(model):
    return compile_ensemble(model)


def server(compiled, per_batch=0.001, per_row=0.0):
    return ModelServer(
        compiled, service_model=lambda k: per_batch + per_row * k
    )


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError, match="max_delay"):
            BatchPolicy(max_delay_s=-1.0)
        with pytest.raises(ValueError, match="max_delay"):
            BatchPolicy(max_delay_s=float("nan"))


class TestTrace:
    def test_synthetic_trace_seeded(self):
        a = synthetic_trace(50, 8, rate_rps=100.0, seed=4)
        b = synthetic_trace(50, 8, rate_rps=100.0, seed=4)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        assert np.isnan(a.features).any()
        assert np.all(np.diff(a.arrivals) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            RequestTrace(features=np.zeros((2, 1)),
                         arrivals=np.array([1.0, 0.5]))
        with pytest.raises(ValueError, match="one arrival"):
            RequestTrace(features=np.zeros((2, 1)),
                         arrivals=np.zeros(3))
        with pytest.raises(ValueError, match="rate_rps"):
            synthetic_trace(5, 2, rate_rps=0.0)

    def test_csc_round_trip(self):
        trace = synthetic_trace(40, 6, rate_rps=10.0, seed=9,
                                missing_rate=0.5)
        csc = trace.csc()
        dense = np.full(trace.features.shape, np.nan)
        for j in range(csc.num_cols):
            rows, vals = csc.col(j)
            dense[rows, j] = vals
        np.testing.assert_array_equal(dense, trace.features)


class TestBatchFormation:
    def test_full_batch_dispatches_at_capacity(self, compiled):
        # four arrivals in a burst, max_batch=2 -> two batches of 2
        trace = trace_at([0.0, 0.0, 0.0, 0.0])
        report = MicroBatcher(
            server(compiled), BatchPolicy(2, max_delay_s=10.0)
        ).run(trace)
        assert [b.size for b in report.batches] == [2, 2]
        # first closes immediately; second waits for the server
        assert report.batches[0].start_s == 0.0
        assert report.batches[1].start_s == pytest.approx(0.001)

    def test_delay_timeout_flushes_partial_batch(self, compiled):
        trace = trace_at([0.0, 0.004])
        report = MicroBatcher(
            server(compiled), BatchPolicy(64, max_delay_s=0.002)
        ).run(trace)
        assert [b.size for b in report.batches] == [1, 1]
        assert report.batches[0].close_s == pytest.approx(0.002)
        assert report.batches[1].close_s == pytest.approx(0.006)

    def test_queue_absorbs_arrivals_while_busy(self, compiled):
        # server busy 10ms; everything arriving meanwhile joins batch 2
        trace = trace_at([0.0, 0.001, 0.002, 0.009])
        report = MicroBatcher(
            server(compiled, per_batch=0.010),
            BatchPolicy(64, max_delay_s=0.0005),
        ).run(trace)
        assert [b.size for b in report.batches] == [1, 3]
        # batch 1 closed at 0.5ms and ran 10ms; batch 2 starts then
        assert report.batches[1].start_s == pytest.approx(0.0105)

    def test_zero_delay_still_serves_simultaneous_arrivals(self,
                                                           compiled):
        trace = trace_at([0.0, 0.0, 0.5])
        report = MicroBatcher(
            server(compiled), BatchPolicy(8, max_delay_s=0.0)
        ).run(trace)
        assert [b.size for b in report.batches] == [2, 1]

    def test_empty_trace(self, compiled):
        trace = trace_at([])
        report = MicroBatcher(
            server(compiled), BatchPolicy(8, 0.001)
        ).run(trace, collect_scores=True)
        assert report.records == [] and report.batches == []
        assert report.scores.size == 0
        assert report.versions_served() == []

    def test_every_request_served_once(self, compiled):
        trace = synthetic_trace(300, compiled.num_features,
                                rate_rps=5000.0, seed=3)
        report = MicroBatcher(
            server(compiled, per_row=1e-6), BatchPolicy(32, 0.002)
        ).run(trace)
        ids = sorted(r.request_id for r in report.records)
        assert ids == list(range(300))
        assert sum(b.size for b in report.batches) == 300


class TestLedger:
    def test_latency_decomposition(self, compiled):
        trace = trace_at([0.0, 0.004])
        report = MicroBatcher(
            server(compiled), BatchPolicy(64, max_delay_s=0.002)
        ).run(trace)
        first = report.records[0]
        assert first.queue_s == pytest.approx(0.002)
        assert first.latency_s == pytest.approx(0.003)
        stats = report.latency_stats()
        assert stats.count == 2
        assert stats.p50_s <= stats.p95_s <= stats.p99_s <= stats.max_s
        assert stats.throughput_rps > 0
        assert set(stats.to_dict()) >= {"p50_s", "p99_s",
                                        "throughput_rps"}

    def test_empty_stats(self):
        from repro.serve import LatencyStats

        stats = LatencyStats.from_records([])
        assert stats.count == 0 and stats.p99_s == 0.0

    def test_collected_scores_match_direct_prediction(self, model,
                                                      compiled):
        trace = synthetic_trace(100, compiled.num_features,
                                rate_rps=2000.0, seed=5)
        report = MicroBatcher(
            server(compiled), BatchPolicy(16, 0.001)
        ).run(trace, collect_scores=True)
        np.testing.assert_array_equal(
            report.scores, model.raw_scores(trace.csc())
        )


class TestHotSwap:
    def test_swap_lands_on_batch_boundary(self, small_binary, model):
        registry = ModelRegistry()
        registry.publish(model)
        half = GBDT(TrainConfig(num_trees=1, num_layers=4,
                                num_candidates=8))
        registry.publish(half.fit(small_binary).ensemble)
        trace = synthetic_trace(
            200, registry.active.compiled.num_features,
            rate_rps=5000.0, seed=6,
        )
        swap_at = float(trace.arrivals[100])
        backend = ModelServer(registry, service_model=lambda k: 1e-4)
        report = MicroBatcher(backend, BatchPolicy(16, 0.001)).run(
            trace, swaps=[(swap_at, lambda t: registry.activate(2))]
        )
        assert report.versions_served() == [1, 2]
        for batch in report.batches:
            versions = {r.model_version for r in report.records
                        if r.batch_id == batch.batch_id}
            assert versions == {batch.model_version}
        # the swap splits traffic in two contiguous version runs
        versions = [r.model_version for r in report.records]
        flip = versions.index(2)
        assert all(v == 1 for v in versions[:flip])
        assert all(v == 2 for v in versions[flip:])

    def test_late_swap_still_fires(self, model):
        registry = ModelRegistry()
        registry.publish(model)
        fired = []
        trace = trace_at([0.0])
        MicroBatcher(
            ModelServer(registry, service_model=lambda k: 1e-4),
            BatchPolicy(4, 0.001),
        ).run(trace, swaps=[(99.0, fired.append)])
        assert fired == [99.0]


class TestBoundedQueue:
    """Admission control: a bounded backlog with reject/shed policies."""

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            BatchPolicy(8, 0.001, max_queue=-1)
        with pytest.raises(ValueError, match="at least one full batch"):
            BatchPolicy(8, 0.001, max_queue=4)
        with pytest.raises(ValueError, match="overload"):
            BatchPolicy(8, 0.001, max_queue=8, overload="panic")
        assert not BatchPolicy(8, 0.001).bounded
        assert BatchPolicy(8, 0.001, max_queue=8).bounded

    def test_reject_drops_newcomers(self, compiled):
        # batch [0] dispatches at 0.5ms and serves for 10ms; 1 and 2
        # fill the 2-slot queue; 3 and 4 arrive against a full queue
        trace = trace_at([0.0, 0.001, 0.002, 0.003, 0.004])
        report = MicroBatcher(
            server(compiled, per_batch=0.010),
            BatchPolicy(2, max_delay_s=0.0005, max_queue=2,
                        overload="reject"),
        ).run(trace)
        assert sorted(r.request_id for r in report.records) == [0, 1, 2]
        assert [(d.request_id, d.reason) for d in report.dropped] == \
            [(3, "reject"), (4, "reject")]
        # a rejected request never waits: dropped on arrival
        assert all(d.queued_s == 0.0 for d in report.dropped)

    def test_shed_oldest_keeps_freshest(self, compiled):
        trace = trace_at([0.0, 0.001, 0.002, 0.003, 0.004])
        report = MicroBatcher(
            server(compiled, per_batch=0.010),
            BatchPolicy(2, max_delay_s=0.0005, max_queue=2,
                        overload="shed-oldest"),
        ).run(trace)
        # 3 evicts 1, 4 evicts 2: the freshest requests get served
        assert sorted(r.request_id for r in report.records) == [0, 3, 4]
        assert [(d.request_id, d.reason) for d in report.dropped] == \
            [(1, "shed-oldest"), (2, "shed-oldest")]
        # request 1 queued from 1ms until evicted at 3ms
        assert report.dropped[0].queued_s == pytest.approx(0.002)

    def test_drop_rate_in_ledger(self, compiled):
        trace = synthetic_trace(300, compiled.num_features,
                                rate_rps=50_000.0, seed=3)
        report = MicroBatcher(
            server(compiled, per_batch=0.005),
            BatchPolicy(16, 0.001, max_queue=32, overload="reject"),
        ).run(trace, collect_scores=True)
        stats = report.latency_stats()
        assert stats.dropped == len(report.dropped) > 0
        assert stats.count + stats.dropped == 300
        assert stats.drop_rate == pytest.approx(stats.dropped / 300)
        assert stats.to_dict()["drop_rate"] == stats.drop_rate
        # scores align with what was actually served
        assert report.scores.shape[0] == stats.count
        served = sorted(r.request_id for r in report.records)
        dropped = sorted(d.request_id for d in report.dropped)
        assert sorted(served + dropped) == list(range(300))

    def test_roomy_queue_matches_unbounded_schedule(self, compiled):
        trace = synthetic_trace(200, compiled.num_features,
                                rate_rps=2000.0, seed=5)
        policy = BatchPolicy(16, 0.002)
        bounded = BatchPolicy(16, 0.002, max_queue=10_000)
        a = MicroBatcher(server(compiled, per_batch=0.001),
                         policy).run(trace)
        b = MicroBatcher(server(compiled, per_batch=0.001),
                         bounded).run(trace)
        assert b.dropped == []
        assert [x.size for x in a.batches] == [x.size for x in b.batches]
        assert [x.close_s for x in a.batches] == \
            [x.close_s for x in b.batches]
        assert [r.request_id for r in a.records] == \
            [r.request_id for r in b.records]

    def test_light_load_never_drops(self, compiled):
        trace = synthetic_trace(60, compiled.num_features,
                                rate_rps=100.0, seed=1)
        report = MicroBatcher(
            server(compiled), BatchPolicy(8, 0.001, max_queue=8,
                                          overload="shed-oldest"),
        ).run(trace)
        assert report.dropped == []
        assert report.latency_stats().drop_rate == 0.0

    def test_nan_arrival_rejected_up_front(self):
        # regression: NaN compares false against everything, so the
        # diff-based monotonicity check alone let a NaN arrival
        # through — it then walked straight into _run_bounded and
        # produced nonsense (negative queue delays, a batcher that
        # never dispatches).  The trace must refuse it at construction.
        arrivals = np.array([0.0, np.nan, 0.002])
        with pytest.raises(ValueError, match="finite"):
            RequestTrace(features=np.zeros((3, 2)), arrivals=arrivals)
        with pytest.raises(ValueError, match="finite"):
            RequestTrace(features=np.zeros((2, 2)),
                         arrivals=np.array([0.0, np.inf]))

    def test_priority_shed_evicts_lowest_class_first(self, compiled):
        # request 0 dispatches alone at 0.5ms and serves for 50ms;
        # the queue then holds [1(pri 0), 2(pri 2)] when newcomer 3
        # (pri 1) arrives — it must evict 1, the oldest of the lowest
        # class, never the more important 2
        trace = RequestTrace(
            features=np.arange(8.0).reshape(4, 2),
            arrivals=np.array([0.0, 0.001, 0.002, 0.003]),
            priorities=np.array([0, 0, 2, 1], dtype=np.int32),
        )
        report = MicroBatcher(
            server(compiled, per_batch=0.050),
            BatchPolicy(2, max_delay_s=0.0005, max_queue=2,
                        overload="shed-oldest"),
        ).run(trace)
        dropped = [(d.request_id, d.reason, d.priority)
                   for d in report.dropped]
        assert dropped == [(1, "shed-oldest", 0)]
        assert sorted(r.request_id for r in report.records) == [0, 2, 3]

    def test_priority_shed_refuses_lowly_newcomer(self, compiled):
        # after 0 dispatches, the queue holds priorities [2, 1];
        # newcomer 3 at priority 0 is below every queued class — it is
        # rejected, nobody is evicted
        trace = RequestTrace(
            features=np.arange(8.0).reshape(4, 2),
            arrivals=np.array([0.0, 0.001, 0.002, 0.003]),
            priorities=np.array([0, 2, 1, 0], dtype=np.int32),
        )
        report = MicroBatcher(
            server(compiled, per_batch=0.050),
            BatchPolicy(2, max_delay_s=0.0005, max_queue=2,
                        overload="shed-oldest"),
        ).run(trace)
        assert [(d.request_id, d.reason) for d in report.dropped] == \
            [(3, "reject")]
        assert sorted(r.request_id for r in report.records) == [0, 1, 2]

    def test_unprioritized_shed_unchanged(self, compiled):
        # without a priorities array the shed policy is plain
        # drop-head — identical schedule to the pre-priority behavior
        trace = trace_at([0.0, 0.001, 0.002, 0.003, 0.004])
        report = MicroBatcher(
            server(compiled, per_batch=0.010),
            BatchPolicy(2, max_delay_s=0.0005, max_queue=2,
                        overload="shed-oldest"),
        ).run(trace)
        assert [(d.request_id, d.tenant, d.priority)
                for d in report.dropped] == [(1, 0, 0), (2, 0, 0)]

    def test_tenant_attribution_on_drops(self, compiled):
        trace = RequestTrace(
            features=np.arange(8.0).reshape(4, 2),
            arrivals=np.array([0.0, 0.001, 0.002, 0.003]),
            tenants=np.array([3, 1, 4, 1], dtype=np.int32),
            priorities=np.zeros(4, dtype=np.int32),
        )
        report = MicroBatcher(
            server(compiled, per_batch=0.050),
            BatchPolicy(2, max_delay_s=0.0005, max_queue=2,
                        overload="reject"),
        ).run(trace)
        # request 0 dispatches alone; 1 and 2 fill the queue; 3 is the
        # only arrival refused — attributed to its tenant
        assert [(d.request_id, d.tenant) for d in report.dropped] == \
            [(3, 1)]

    def test_annotation_validation(self):
        with pytest.raises(ValueError, match="one tenant entry"):
            RequestTrace(features=np.zeros((2, 1)),
                         arrivals=np.array([0.0, 1.0]),
                         tenants=np.zeros(3, dtype=np.int32))
        with pytest.raises(ValueError, match="integer"):
            RequestTrace(features=np.zeros((2, 1)),
                         arrivals=np.array([0.0, 1.0]),
                         priorities=np.zeros(2))


class TestModelServer:
    def test_rejects_unknown_model_type(self):
        with pytest.raises(TypeError, match="CompiledEnsemble"):
            ModelServer(object())

    def test_measured_service_time_used_without_model(self, compiled):
        trace = trace_at([0.0, 0.0])
        report = MicroBatcher(
            ModelServer(compiled), BatchPolicy(8, 0.0)
        ).run(trace)
        stats = report.latency_stats()
        assert stats.makespan_s > 0.0  # real wall clock, nonzero
