"""Compiled-ensemble tests: structure, exactness, input formats.

The load-bearing guarantee is *bit identity*: the compiled
level-synchronous predictor must return literally the same float64
values as ``TreeEnsemble.raw_scores`` — every assertion here is
``array_equal``, never ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, GBDT, TrainConfig, make_system
from repro.core.split import SplitInfo
from repro.core.tree import Tree, TreeEnsemble
from repro.data.matrix import CSRMatrix
from repro.serve import compile_ensemble
from repro.serve.compiler import _FEATURE_MASK
from repro.systems import PLANS


@pytest.fixture(scope="module")
def trained(small_binary):
    cfg = TrainConfig(num_trees=4, num_layers=5, num_candidates=8)
    return GBDT(cfg).fit(small_binary).ensemble, small_binary


@pytest.fixture(scope="module")
def compiled(trained):
    return compile_ensemble(trained[0])


class TestStructure:
    def test_children_adjacent_and_leaves_self_loop(self, compiled):
        internal = compiled.leaf_slot < 0
        np.testing.assert_array_equal(
            compiled.right[internal], compiled.left[internal] + 1
        )
        leaves = ~internal
        slots = np.arange(compiled.num_slots, dtype=np.int32)
        np.testing.assert_array_equal(compiled.left[leaves],
                                      slots[leaves])
        assert np.all(np.isinf(compiled.threshold[leaves]))
        assert np.all(compiled.default_left[leaves])

    def test_tree_roots_partition_slots(self, trained, compiled):
        ensemble = trained[0]
        assert compiled.tree_root[0] == 0
        assert compiled.tree_root[-1] == compiled.num_slots
        sizes = np.diff(compiled.tree_root)
        for tree, size in zip(ensemble.trees, sizes):
            assert size == len(tree.nodes)

    def test_leaf_weights_unscaled(self, trained, compiled):
        ensemble = trained[0]
        assert compiled.num_leaves == sum(
            tree.num_leaves for tree in ensemble.trees
        )
        # root tree's first BFS leaf weight appears verbatim
        weights = {
            tuple(node.weight.tolist())
            for tree in ensemble.trees
            for node in tree.nodes.values() if node.is_leaf
        }
        for row in compiled.leaf_weights:
            assert tuple(row.tolist()) in weights

    def test_arrays_read_only(self, compiled):
        with pytest.raises(ValueError):
            compiled.threshold[0] = 0.0

    def test_introspection(self, compiled):
        assert compiled.nbytes > 0
        assert "CompiledEnsemble" in repr(compiled)

    def test_feature_id_overflow_rejected(self):
        tree = Tree(2, 1)
        tree.set_split(0, SplitInfo(feature=_FEATURE_MASK + 1, bin=0,
                                    default_left=True, gain=1.0), 0.5)
        tree.set_leaf(1, np.array([1.0]))
        tree.set_leaf(2, np.array([-1.0]))
        ensemble = TreeEnsemble(1, 0.3)
        ensemble.append(tree)
        with pytest.raises(ValueError, match="packed limit"):
            compile_ensemble(ensemble)

    def test_missing_child_rejected(self):
        tree = Tree(2, 1)
        tree.set_split(0, SplitInfo(feature=0, bin=0, default_left=True,
                                    gain=1.0), 0.5)
        tree.set_leaf(1, np.array([1.0]))  # right child absent
        ensemble = TreeEnsemble(1, 0.3)
        ensemble.append(tree)
        with pytest.raises(ValueError, match="lacks child"):
            compile_ensemble(ensemble)


class TestExactness:
    def test_bit_identical_on_training_data(self, trained, compiled):
        ensemble, dataset = trained
        csc = dataset.csc()
        np.testing.assert_array_equal(
            compiled.raw_scores(csc), ensemble.raw_scores(csc)
        )

    def test_bit_identical_on_sparse_data(self, small_sparse):
        cfg = TrainConfig(num_trees=3, num_layers=5, num_candidates=8)
        ensemble = GBDT(cfg).fit(small_sparse).ensemble
        compiled = compile_ensemble(ensemble)
        csc = small_sparse.csc()
        np.testing.assert_array_equal(
            compiled.raw_scores(csc), ensemble.raw_scores(csc)
        )

    def test_bit_identical_multiclass(self, small_multiclass):
        cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=8,
                          objective="multiclass", num_classes=4)
        ensemble = GBDT(cfg).fit(small_multiclass).ensemble
        compiled = compile_ensemble(ensemble)
        assert compiled.gradient_dim == 4
        csc = small_multiclass.csc()
        np.testing.assert_array_equal(
            compiled.raw_scores(csc), ensemble.raw_scores(csc)
        )

    def test_csr_and_dense_inputs_agree(self, trained, compiled):
        ensemble, dataset = trained
        csc = dataset.csc()
        csr = csc.to_csr() if hasattr(csc, "to_csr") else dataset.features
        want = ensemble.raw_scores(csc)
        np.testing.assert_array_equal(compiled.raw_scores(csr), want)
        np.testing.assert_array_equal(
            compiled.raw_scores(compiled.densify(csc)), want
        )

    def test_num_trees_prefix(self, trained, compiled):
        ensemble, dataset = trained
        csc = dataset.csc()
        for use in (0, 1, 2, len(ensemble), len(ensemble) + 5):
            np.testing.assert_array_equal(
                compiled.raw_scores(csc, num_trees=use),
                ensemble.raw_scores(csc, num_trees=use),
            )

    def test_narrow_batch_padded(self, trained, compiled):
        # a batch with fewer columns than the model expects: the extra
        # columns are all-missing, same as an empty tail in sparse form
        ensemble, dataset = trained
        dense = compiled.densify(dataset.csc())
        narrow = dense[:, :3].copy()
        rows = [
            [(j, float(v)) for j, v in enumerate(row) if not np.isnan(v)]
            for row in narrow
        ]
        # reference CSC keeps full width (empty tail columns = missing)
        csr = CSRMatrix.from_rows(rows, compiled.num_features)
        np.testing.assert_array_equal(
            compiled.raw_scores(narrow),
            ensemble.raw_scores(csr.to_csc()),
        )

    def test_empty_ensemble(self):
        compiled = compile_ensemble(TreeEnsemble(2, 0.1))
        scores = compiled.raw_scores(np.zeros((5, 3)))
        np.testing.assert_array_equal(scores, np.zeros((5, 2)))

    def test_single_leaf_tree(self):
        tree = Tree(2, 1)
        tree.set_leaf(0, np.array([0.75]))
        ensemble = TreeEnsemble(1, 0.3)
        ensemble.append(tree)
        compiled = compile_ensemble(ensemble)
        scores = compiled.raw_scores(np.full((4, 1), np.nan))
        np.testing.assert_array_equal(scores, np.full((4, 1), 0.3 * 0.75))


class TestInputHandling:
    def test_densify_rejects_bad_inputs(self, compiled):
        with pytest.raises(ValueError, match="2-D"):
            compiled.densify(np.zeros(3))
        with pytest.raises(TypeError, match="unsupported batch"):
            compiled.densify([[1.0, 2.0]])
        with pytest.raises(TypeError, match="unsupported batch"):
            compiled.raw_scores([[1.0, 2.0]])

    def test_densify_passthrough_and_pad(self, compiled):
        width = compiled.num_features
        exact = np.zeros((2, width))
        assert compiled.densify(exact).shape == (2, width)
        padded = compiled.densify(np.zeros((2, 1)))
        assert padded.shape == (2, width)
        assert np.isnan(padded[:, 1:]).all()

    def test_densify_csr_matches_csc(self, trained, compiled):
        csc = trained[1].csc()
        np.testing.assert_array_equal(
            compiled.densify(csc.to_csr()), compiled.densify(csc)
        )

    def test_assign_leaves_reach_leaf_slots(self, trained, compiled):
        dense = compiled.densify(trained[1].csc())
        for tree in range(compiled.num_trees):
            slots = compiled.assign_leaves(dense, tree)
            assert np.all(compiled.leaf_slot[slots] >= 0)
            assert np.all(slots >= compiled.tree_root[tree])
            assert np.all(slots < compiled.tree_root[tree + 1])


class TestEveryPlan:
    """The acceptance sweep: every registry plan's trained model compiles
    to a bit-identical predictor."""

    @pytest.mark.parametrize("plan_key", sorted(PLANS))
    def test_plan_model_bit_identical(self, plan_key, small_binary):
        cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8)
        cluster = ClusterConfig(num_workers=3)
        system = make_system(plan_key, cfg, cluster)
        ensemble = system.fit(small_binary).ensemble
        compiled = compile_ensemble(ensemble)
        csc = small_binary.csc()
        np.testing.assert_array_equal(
            compiled.raw_scores(csc), ensemble.raw_scores(csc)
        )
