"""Property-based exactness: arbitrary ensembles, arbitrary batches.

For randomly *constructed* trees (not trained ones — hypothesis explores
structures training rarely produces: lopsided trees, thresholds colliding
exactly with feature values, all-missing columns, negative zero) the
compiled predictor must equal ``TreeEnsemble.raw_scores`` bit for bit,
across the sparse, dense, and CSR input paths, including multiclass
leaf vectors and both missing-value default directions.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.split import SplitInfo
from repro.core.tree import Tree, TreeEnsemble
from repro.data.matrix import CSCMatrix
from repro.serve import compile_ensemble

#: a small grid shared by thresholds and feature values, so exact
#: value == threshold collisions (the `<=` boundary) occur routinely
_GRID = [-2.5, -1.0, -0.0, 0.0, 0.5, 1.0, 3.25]

_values = st.one_of(
    st.sampled_from(_GRID),
    st.floats(-5.0, 5.0, allow_nan=False),
)


@st.composite
def trees(draw, num_features: int, gradient_dim: int) -> Tree:
    num_layers = draw(st.integers(2, 4))
    tree = Tree(num_layers, gradient_dim)

    def fill(node_id: int, layer: int) -> None:
        leaf = layer == num_layers - 1 or draw(st.booleans())
        if leaf:
            weight = draw(st.lists(_values, min_size=gradient_dim,
                                   max_size=gradient_dim))
            tree.set_leaf(node_id, np.asarray(weight))
        else:
            tree.set_split(
                node_id,
                SplitInfo(
                    feature=draw(st.integers(0, num_features - 1)),
                    bin=0,
                    default_left=draw(st.booleans()),
                    gain=1.0,
                ),
                draw(_values),
            )
            fill(2 * node_id + 1, layer + 1)
            fill(2 * node_id + 2, layer + 1)

    fill(0, 0)
    return tree


@st.composite
def ensembles_and_batches(draw):
    num_features = draw(st.integers(1, 5))
    gradient_dim = draw(st.sampled_from([1, 3]))
    ensemble = TreeEnsemble(
        gradient_dim,
        learning_rate=draw(st.sampled_from([0.1, 0.3, 1.0])),
    )
    for _ in range(draw(st.integers(1, 3))):
        ensemble.append(draw(trees(num_features, gradient_dim)))
    num_rows = draw(st.integers(1, 16))
    dense = np.full((num_rows, num_features), np.nan)
    for i in range(num_rows):
        for j in range(num_features):
            if draw(st.booleans()):
                dense[i, j] = draw(_values)
    return ensemble, dense


def to_csc(dense: np.ndarray) -> CSCMatrix:
    """Stored entry per non-NaN cell (the repo's missing convention)."""
    mask = ~np.isnan(dense)
    by_col = mask.T
    cols, rows = np.nonzero(by_col)
    indptr = np.concatenate(
        ([0], np.cumsum(by_col.sum(axis=1)))
    ).astype(np.int64)
    return CSCMatrix(indptr, rows.astype(np.int64),
                     np.ascontiguousarray(dense.T[by_col]),
                     dense.shape[0])


@settings(max_examples=80, deadline=None)
@given(case=ensembles_and_batches())
def test_compiled_bit_identical_to_ensemble(case):
    ensemble, dense = case
    compiled = compile_ensemble(ensemble)
    csc = to_csc(dense)
    want = ensemble.raw_scores(csc)
    np.testing.assert_array_equal(compiled.raw_scores(csc), want)
    np.testing.assert_array_equal(compiled.raw_scores(dense), want)
    np.testing.assert_array_equal(
        compiled.raw_scores(csc.to_csr()), want
    )


@settings(max_examples=30, deadline=None)
@given(case=ensembles_and_batches(), prefix=st.integers(0, 4))
def test_tree_prefix_bit_identical(case, prefix):
    ensemble, dense = case
    compiled = compile_ensemble(ensemble)
    csc = to_csc(dense)
    np.testing.assert_array_equal(
        compiled.raw_scores(csc, num_trees=prefix),
        ensemble.raw_scores(csc, num_trees=prefix),
    )
