"""Bin-quantized predictor ablation: exactness and guard rails.

The uint8 predictor is only admissible as an ablation if it is
*bit-identical* to the float compiled path — these tests pin that on
trained models (dense, sparse/missing-heavy, multiclass), across every
importable kernel backend, through both the convenience float entry
point and the pre-binned hot path.  The quantizer's refusal cases
(off-grid thresholds, too many bins) are pinned too, because a silent
mis-quantization would *look* like a speedup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainConfig
from repro.core.gbdt import GBDT
from repro.core.kernels import MISSING_BIN, available_backends
from repro.data.dataset import bin_dataset
from repro.serve import compile_ensemble, quantize_ensemble

NUM_BINS = 16


def train_quantized(dataset, num_classes=2, num_bins=NUM_BINS):
    binned = bin_dataset(dataset, num_bins)
    cfg = TrainConfig(num_trees=4, num_layers=4, num_candidates=num_bins,
                      num_classes=num_classes,
                      objective="multiclass" if num_classes > 2 else
                      "binary")
    ensemble = GBDT(cfg).fit(dataset, binned=binned).ensemble
    compiled = compile_ensemble(ensemble)
    return compiled, quantize_ensemble(compiled, binned.cuts), binned


class TestExactness:
    @pytest.mark.parametrize("fixture", ["small_binary", "small_sparse"])
    def test_bit_identical_to_float_path(self, fixture, request):
        dataset = request.getfixturevalue(fixture)
        compiled, quant, _ = train_quantized(dataset)
        batch = dataset.csc()
        expect = compiled.raw_scores(batch)
        assert np.array_equal(expect, quant.raw_scores(batch))

    def test_multiclass_exact(self, small_multiclass):
        compiled, quant, _ = train_quantized(small_multiclass,
                                             num_classes=4)
        batch = small_multiclass.csc()
        assert quant.gradient_dim == 4
        assert np.array_equal(compiled.raw_scores(batch),
                              quant.raw_scores(batch))

    @pytest.mark.parametrize("backend",
                             [b for b in available_backends()
                              if b != "numpy"])
    def test_backends_agree(self, small_sparse, backend):
        compiled, quant, binned = train_quantized(small_sparse)
        alt = quantize_ensemble(compiled, binned.cuts, backend=backend)
        batch = small_sparse.csc()
        assert np.array_equal(quant.raw_scores(batch),
                              alt.raw_scores(batch))

    def test_prefix_num_trees_matches_float(self, small_binary):
        compiled, quant, _ = train_quantized(small_binary)
        batch = small_binary.csc()
        for use in (1, 2, quant.num_trees + 5):
            assert np.array_equal(compiled.raw_scores(batch,
                                                      num_trees=use),
                                  quant.raw_scores(batch, num_trees=use))


class TestBinBatch:
    def test_missing_becomes_sentinel(self, small_sparse):
        _, quant, binned = train_quantized(small_sparse)
        bb = quant.bin_batch(small_sparse.csc())
        assert bb.dtype == np.uint8
        assert bb.shape[0] == small_sparse.num_instances
        # the sparse fixture has unstored entries -> sentinel bins
        assert (bb == MISSING_BIN).any()
        # stored entries always quantize below the sentinel
        dense = quant.compiled.densify(small_sparse.csc())
        assert (bb[~np.isnan(dense)] < MISSING_BIN).all()

    def test_bin_once_serve_many(self, small_binary):
        compiled, quant, _ = train_quantized(small_binary)
        bb = quant.bin_batch(small_binary.csc())
        expect = compiled.raw_scores(small_binary.csc())
        assert np.array_equal(expect, quant.raw_scores_binned(bb))
        # same pre-binned batch, second serve: still exact (no state)
        assert np.array_equal(expect, quant.raw_scores_binned(bb))

    def test_rejects_non_uint8(self, small_binary):
        _, quant, _ = train_quantized(small_binary)
        bad = np.zeros((3, 5), dtype=np.int64)
        with pytest.raises(ValueError, match="uint8"):
            quant.raw_scores_binned(bad)


class TestQuantizerGuards:
    def test_off_grid_threshold_rejected(self, small_binary):
        binned = bin_dataset(small_binary, NUM_BINS)
        cfg = TrainConfig(num_trees=2, num_layers=3,
                          num_candidates=NUM_BINS)
        compiled = compile_ensemble(
            GBDT(cfg).fit(small_binary, binned=binned).ensemble)
        # a perturbed grid no longer contains the trained thresholds
        shifted = [c + 1e-9 for c in binned.cuts]
        with pytest.raises(ValueError, match="not on the bin grid"):
            quantize_ensemble(compiled, shifted)

    def test_too_many_bins_rejected(self, small_binary):
        compiled, _, binned = train_quantized(small_binary)
        wide = list(binned.cuts)
        wide[0] = np.linspace(0.0, 1.0, 300)
        with pytest.raises(ValueError, match="at most 255"):
            quantize_ensemble(compiled, wide)

    def test_threshold_bins_read_only(self, small_binary):
        _, quant, _ = train_quantized(small_binary)
        with pytest.raises(ValueError):
            quant.threshold_bin[0] = 1

    def test_repr_and_nbytes(self, small_binary):
        compiled, quant, _ = train_quantized(small_binary)
        assert "QuantizedEnsemble" in repr(quant)
        assert quant.nbytes == compiled.nbytes + quant.threshold_bin.nbytes
