"""Scenario suite conformance: determinism, golden fixture, invariants.

The headline property is byte-identity: a scenario is a pure function
from its declaration to its ``scenario-report/v1`` JSON, pinned against
a golden fixture exactly like the PR 4 golden model.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.ledger import (format_scenario_report, load_scenario_report,
                          save_scenario_report, scenario_report_bytes)
from repro.serve import RequestTrace
from repro.serve.batcher import (BatchRecord, DropRecord, RequestRecord,
                                 ServingReport)
from repro.serve.scenarios import (SCENARIOS, LoadShape, Scenario,
                                   ScenarioRunner, TenantSpec,
                                   audit_priority_admission, build_trace,
                                   expected_requests, get_scenario)

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden" \
    / "scenario_flash_crowd_v1.json"


class TestDeclarations:
    def test_registry_ships_the_required_five(self):
        assert set(SCENARIOS) >= {
            "steady", "diurnal", "flash-crowd", "heavy-tail",
            "hot-swap-under-fire",
        }

    def test_tenant_validation(self):
        with pytest.raises(ValueError, match="rate_rps"):
            TenantSpec("t", rate_rps=0.0, slo_s=0.1)
        with pytest.raises(ValueError, match="slo_s"):
            TenantSpec("t", rate_rps=1.0, slo_s=-0.1)
        with pytest.raises(ValueError, match="repeat_rate"):
            TenantSpec("t", rate_rps=1.0, slo_s=0.1, repeat_rate=1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="unknown load shape"):
            LoadShape(kind="tidal")
        with pytest.raises(ValueError, match="amplitude"):
            LoadShape(kind="diurnal", amplitude=1.0)
        with pytest.raises(ValueError, match="flash_x"):
            LoadShape(kind="flash", flash_x=0.5)

    def test_scenario_validation(self):
        tenant = TenantSpec("t", rate_rps=10.0, slo_s=0.1)
        with pytest.raises(ValueError, match="at least one tenant"):
            Scenario(name="x", seed=0, duration_s=1.0, tenants=())
        with pytest.raises(ValueError, match="duration"):
            Scenario(name="x", seed=0, duration_s=0.0,
                     tenants=(tenant,))
        with pytest.raises(ValueError, match="unique"):
            Scenario(name="x", seed=0, duration_s=1.0,
                     tenants=(tenant, tenant))

    def test_unknown_scenario_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_scaled_shrinks_window_and_landmarks(self):
        scenario = get_scenario("flash-crowd", scale=0.5)
        full = get_scenario("flash-crowd")
        assert scenario.duration_s == pytest.approx(
            full.duration_s * 0.5)
        assert scenario.shape.flash_at_s == pytest.approx(
            full.shape.flash_at_s * 0.5)
        swap = get_scenario("hot-swap-under-fire", scale=0.5)
        assert swap.hot_swap_at_s == pytest.approx(0.25)

    def test_shape_rates(self):
        diurnal = LoadShape(kind="diurnal", amplitude=0.5, period_s=1.0)
        assert diurnal.peak_rate(100.0) == pytest.approx(150.0)
        assert diurnal.rate_at(np.array([0.25]), 100.0)[0] \
            == pytest.approx(150.0)
        flash = LoadShape(kind="flash", flash_at_s=0.5, flash_len_s=0.1,
                          flash_x=4.0)
        rates = flash.rate_at(np.array([0.4, 0.55, 0.7]), 100.0)
        np.testing.assert_allclose(rates, [100.0, 400.0, 100.0])


class TestTraceBuilder:
    def test_deterministic(self):
        scenario = get_scenario("heavy-tail", scale=0.2)
        a, b = build_trace(scenario), build_trace(scenario)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.tenants, b.tenants)
        np.testing.assert_array_equal(a.priorities, b.priorities)

    def test_multi_tenant_annotations(self):
        scenario = get_scenario("heavy-tail", scale=0.1)
        trace = build_trace(scenario)
        assert trace.tenants is not None
        assert set(np.unique(trace.tenants)) <= set(range(8))
        # priorities follow the tenant table
        for i in range(min(trace.num_requests, 200)):
            tenant = scenario.tenants[trace.tenant_of(i)]
            assert trace.priority_of(i) == tenant.priority

    def test_volume_tracks_expected_load(self):
        scenario = get_scenario("flash-crowd")
        trace = build_trace(scenario)
        expect = expected_requests(scenario)
        assert 0.8 * expect < trace.num_requests < 1.2 * expect

    def test_repeats_duplicate_rows(self):
        scenario = dataclasses.replace(
            get_scenario("steady", scale=0.2),
            tenants=(TenantSpec("web", rate_rps=2500.0, slo_s=0.03,
                                repeat_rate=0.5),),
        )
        trace = build_trace(scenario)
        seen = {row.tobytes() for row in trace.features}
        assert len(seen) < trace.num_requests


@pytest.fixture(scope="module")
def flash_report():
    return ScenarioRunner(get_scenario("flash-crowd")).run()


class TestDeterminism:
    def test_byte_identical_replay(self, flash_report):
        again = ScenarioRunner(get_scenario("flash-crowd")).run()
        assert scenario_report_bytes(flash_report) \
            == scenario_report_bytes(again)

    def test_golden_fixture_byte_for_byte(self, flash_report):
        assert GOLDEN.exists(), (
            "golden fixture missing — regenerate with "
            "save_scenario_report(ScenarioRunner(get_scenario("
            "'flash-crowd')).run(), ...)"
        )
        assert scenario_report_bytes(flash_report) == GOLDEN.read_bytes()


class TestRunner:
    def test_flash_crowd_sheds_under_burst(self, flash_report):
        totals = flash_report["totals"]
        assert totals["dropped"] > 0
        assert totals["served"] + totals["dropped"] == totals["arrivals"]
        assert all(flash_report["invariants"].values())

    def test_heavy_tail_priority_stratification(self):
        report = ScenarioRunner(get_scenario("heavy-tail")).run()
        assert all(report["invariants"].values())
        by_priority = {0: [], 1: [], 2: []}
        for stats in report["tenants"].values():
            by_priority[stats["priority"]].append(stats["drop_rate"])
        # the lowest class pays for the overload; the top class rides
        # free — that is what priority admission is for
        assert min(by_priority[0]) > max(by_priority[1])
        assert max(by_priority[2]) == 0.0

    def test_hot_swap_under_fire(self):
        runner = ScenarioRunner(get_scenario("hot-swap-under-fire"))
        report = runner.run()
        assert report["versions_served"] == [1, 2]
        assert all(report["invariants"].values())
        assert report["wire"]["retry_bytes"] > 0      # faults fired
        assert report["cache"]["invalidations"] >= 1  # swap flushed it

    def test_diurnal_cache_absorbs_repeats(self):
        report = ScenarioRunner(get_scenario("diurnal", scale=0.4)).run()
        assert report["cache"]["hit_rate"] > 0.1
        assert all(report["invariants"].values())

    def test_injected_registry_reused(self):
        scenario = get_scenario("steady", scale=0.1)
        first = ScenarioRunner(scenario)
        first.run()
        second = ScenarioRunner(scenario, registry=first.registry,
                                cuts=first.cuts)
        second.run()
        assert second.registry is first.registry


class TestAudit:
    def test_catches_a_priority_violation(self):
        # hand-built ledger: request 0 (priority 2) shed at t=1.0 while
        # request 1 (priority 0) sat queued — the invariant must trip
        trace = RequestTrace(
            features=np.zeros((3, 2)),
            arrivals=np.array([0.0, 0.5, 1.0]),
            priorities=np.array([2, 0, 1], dtype=np.int32),
        )
        report = ServingReport()
        report.dropped.append(DropRecord(0, 0.0, 1.0, "shed-oldest",
                                         priority=2))
        report.batches.append(BatchRecord(0, 2, 2.0, 2.0, 3.0, 0, 1))
        for rid in (1, 2):
            report.records.append(RequestRecord(rid, trace.arrivals[rid],
                                                0, 2.0, 3.0, 0, 1))
        assert not audit_priority_admission(trace, report)
        # same ledger without priorities: nothing to audit
        bare = RequestTrace(features=np.zeros((3, 2)),
                            arrivals=np.array([0.0, 0.5, 1.0]))
        assert audit_priority_admission(bare, report)


class TestLedgerIO:
    def test_save_load_round_trip(self, flash_report, tmp_path):
        path = tmp_path / "report.json"
        save_scenario_report(flash_report, str(path))
        assert load_scenario_report(str(path)) == flash_report
        assert path.read_bytes() == scenario_report_bytes(flash_report)

    def test_schema_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="not a scenario report"):
            save_scenario_report({"schema": "wrong"}, "/dev/null")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro-run-report/v1"}))
        with pytest.raises(ValueError, match="not a scenario report"):
            load_scenario_report(str(path))

    def test_format_mentions_every_tenant(self, flash_report):
        text = format_scenario_report(flash_report)
        for tenant in flash_report["tenants"]:
            assert tenant in text
        assert "invariants" in text and "p99" in text


class TestCli:
    def test_list_run_report(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

        path = tmp_path / "steady.json"
        assert main(["scenarios", "run", "steady", "--scale", "0.1",
                     "--report-out", str(path)]) == 0
        report = load_scenario_report(str(path))
        assert report["scenario"] == "steady"
        assert all(report["invariants"].values())

        assert main(["scenarios", "report", str(path)]) == 0
        assert "scenario report — steady" in capsys.readouterr().out

    def test_smoke_runs_everything(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "reports"
        assert main(["scenarios", "run", "--smoke",
                     "--report-out", str(out_dir)]) == 0
        capsys.readouterr()
        written = {p.stem for p in out_dir.glob("*.json")}
        assert written == set(SCENARIOS)
