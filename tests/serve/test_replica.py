"""Replica-set tests: deploy accounting, balancing, stragglers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, GBDT, TrainConfig
from repro.config import NetworkModel
from repro.serve import (BatchPolicy, DEPLOY_KIND, MicroBatcher,
                         ModelRegistry, ReplicaSet, synthetic_trace)


@pytest.fixture(scope="module")
def registry(small_binary):
    registry = ModelRegistry()
    registry.publish(GBDT(TrainConfig(
        num_trees=3, num_layers=4, num_candidates=8,
    )).fit(small_binary).ensemble)
    registry.publish(GBDT(TrainConfig(
        num_trees=1, num_layers=3, num_candidates=8,
    )).fit(small_binary).ensemble)
    return registry


def make_trace(registry, n=200, seed=2, rate=5000.0):
    return synthetic_trace(
        n, registry.active.compiled.num_features, rate, seed=seed,
    )


class TestDeploy:
    def test_deploy_bytes_exact(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=3))
        replicas.deploy(1)
        assert replicas.deploy_bytes == 3 * registry.get(1).nbytes
        replicas.deploy(2)
        assert replicas.deploy_bytes == 3 * (registry.get(1).nbytes
                                             + registry.get(2).nbytes)
        snapshot = replicas.network.snapshot()
        assert set(snapshot.bytes_by_kind) == {DEPLOY_KIND}
        assert replicas.deployed_versions() == [2, 2, 2]

    def test_deploy_time_follows_network_model(self, registry):
        network = NetworkModel(bandwidth_gbps=1.0, latency_s=0.01)
        replicas = ReplicaSet(
            registry, ClusterConfig(num_workers=2, network=network)
        )
        replicas.deploy(1, at_s=5.0)
        expected = 5.0 + network.transfer_time(registry.get(1).nbytes)
        assert replicas.next_free_s() == pytest.approx(expected)

    def test_serving_before_deploy_rejected(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=2))
        with pytest.raises(RuntimeError, match="no model"):
            replicas.dispatch(np.zeros((1, 4)), 0.0)

    def test_unknown_balancer(self, registry):
        with pytest.raises(ValueError, match="unknown balancer"):
            ReplicaSet(registry, balancer="random")


@pytest.fixture(scope="module")
def append_registry(small_binary):
    """Two versions where v2 extends v1 by two trees — boosting is
    deterministic, so the longer run's tree prefix equals the short
    run's trees exactly (the append-mostly rollout shape)."""
    registry = ModelRegistry()
    cfg = dict(num_layers=4, num_candidates=8)
    registry.publish(GBDT(TrainConfig(num_trees=2, **cfg))
                     .fit(small_binary).ensemble)
    registry.publish(GBDT(TrainConfig(num_trees=4, **cfg))
                     .fit(small_binary).ensemble)
    return registry


class TestDeltaDeploys:
    def test_off_by_default(self, append_registry):
        replicas = ReplicaSet(append_registry,
                              ClusterConfig(num_workers=2))
        replicas.deploy(1)
        replicas.deploy(2)
        assert replicas.deploy_bytes == replicas.deploy_raw_bytes
        assert replicas.network.snapshot().codec_savings_by_kind() == {}

    def test_second_rollout_ships_tree_suffix(self, append_registry):
        v1 = append_registry.get(1)
        v2 = append_registry.get(2)
        replicas = ReplicaSet(append_registry,
                              ClusterConfig(num_workers=3),
                              delta_deploys=True)
        replicas.deploy(1)
        assert replicas.deploy_bytes == 3 * v1.nbytes  # no predecessor
        replicas.deploy(2)
        full = 3 * (v1.nbytes + v2.nbytes)
        assert replicas.deploy_raw_bytes == full
        assert replicas.deploy_bytes < full
        assert replicas.deployed_versions() == [2, 2, 2]
        savings = replicas.network.snapshot().codec_savings_by_kind()
        assert savings["codec:" + DEPLOY_KIND] == \
            full - replicas.deploy_bytes
        # the wire still carries only the deploy kind
        assert set(replicas.network.snapshot().bytes_by_kind) == \
            {DEPLOY_KIND}

    def test_delta_deployed_model_serves_identically(
            self, append_registry):
        rng = np.random.default_rng(0)
        features = rng.standard_normal(
            (32, append_registry.get(2).compiled.num_features))
        full = ReplicaSet(append_registry, ClusterConfig(num_workers=1))
        delta = ReplicaSet(append_registry, ClusterConfig(num_workers=1),
                           delta_deploys=True)
        for replicas in (full, delta):
            replicas.deploy(1)
            replicas.deploy(2)
        np.testing.assert_array_equal(
            full.dispatch(features, 0.0).scores,
            delta.dispatch(features, 0.0).scores)

    def test_unrelated_versions_fall_back_to_full(self, registry):
        # the shared `registry` fixture's versions share no tree prefix
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=2),
                              delta_deploys=True)
        replicas.deploy(1)
        replicas.deploy(2)
        assert replicas.deploy_bytes == replicas.deploy_raw_bytes == \
            2 * (registry.get(1).nbytes + registry.get(2).nbytes)


class TestBalancing:
    def test_round_robin_cycles_workers(self, registry):
        replicas = ReplicaSet(
            registry, ClusterConfig(num_workers=3),
            balancer="round-robin", service_model=lambda k: 1e-4,
        )
        replicas.deploy()
        trace = make_trace(registry)
        report = MicroBatcher(replicas, BatchPolicy(16, 0.001)).run(trace)
        workers = [b.worker for b in report.batches]
        assert workers[:6] == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_fast_worker(self, registry):
        # worker 1 is 10x faster; under sustained load it should take
        # the lion's share of batches
        cluster = ClusterConfig(num_workers=2,
                                worker_speeds=(0.1, 1.0))
        replicas = ReplicaSet(registry, cluster, balancer="least-loaded",
                              service_model=lambda k: 2e-4)
        replicas.deploy()
        trace = make_trace(registry, n=400, rate=50_000.0)
        report = MicroBatcher(replicas, BatchPolicy(16, 0.0005)).run(trace)
        counts = np.bincount([b.worker for b in report.batches],
                             minlength=2)
        assert counts[1] > counts[0] * 2

    def test_straggler_slows_service(self, registry):
        slow = ReplicaSet(
            registry,
            ClusterConfig(num_workers=1, worker_speeds=(0.5,)),
            service_model=lambda k: 1e-3,
        )
        slow.deploy()
        result = slow.dispatch(np.zeros((4, 4)), 0.0)
        assert result.completion_s - result.start_s == \
            pytest.approx(2e-3)


class TestHotSwapUnderTraffic:
    def test_swap_is_atomic_and_accounted(self, registry):
        workers = 4
        replicas = ReplicaSet(
            registry, ClusterConfig(num_workers=workers),
            balancer="least-loaded", service_model=lambda k: 2e-4,
        )
        replicas.deploy(1)
        trace = make_trace(registry, n=300, seed=8)
        swap_at = float(trace.arrivals[150])
        report = MicroBatcher(replicas, BatchPolicy(16, 0.001)).run(
            trace, swaps=[(swap_at, replicas.deployer(2))]
        )
        # every request served by exactly one version
        assert report.versions_served() == [1, 2]
        for batch in report.batches:
            versions = {r.model_version for r in report.records
                        if r.batch_id == batch.batch_id}
            assert len(versions) == 1
        # all requests served, none dropped during the swap
        assert sorted(r.request_id for r in report.records) == \
            list(range(300))
        # deploy traffic: both rollouts, every worker, exact bytes
        expected = workers * (registry.get(1).nbytes
                              + registry.get(2).nbytes)
        assert replicas.deploy_bytes == expected
        # the deployer also flipped the registry pointer
        assert registry.active.version == 2

    def test_deployer_with_explicit_entry_skips_activate(self, registry):
        registry.activate(1)
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=2),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        replicas.deployer(registry.get(2))(0.5)
        assert replicas.deployed_versions() == [2, 2]
        assert registry.active.version == 1  # pointer untouched


class TestVersionTargeting:
    def test_subset_deploy_touches_only_the_pool(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=4),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        replicas.deploy(2, workers=[3], kind="deploy:canary")
        assert replicas.deployed_versions() == [1, 1, 1, 2]
        assert replicas.workers_serving(1) == [0, 1, 2]
        assert replicas.workers_serving(2) == [3]
        snapshot = replicas.network.snapshot().bytes_by_kind
        assert snapshot["deploy:canary"] == registry.get(2).nbytes
        assert snapshot[DEPLOY_KIND] == 4 * registry.get(1).nbytes

    def test_pool_validation(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=2),
                              service_model=lambda k: 1e-4)
        with pytest.raises(ValueError, match="must not be empty"):
            replicas.deploy(1, workers=[])
        with pytest.raises(ValueError, match="out of range"):
            replicas.deploy(1, workers=[5])

    def test_pool_dispatch_stays_inside_the_pool(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=4),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        replicas.deploy(2, workers=[2, 3])
        rows = np.zeros((2, registry.get(1).compiled.num_features))
        workers = {replicas.dispatch(rows, 0.0, pool=[2, 3]).worker
                   for _ in range(6)}
        assert workers == {2, 3}
        versions = {replicas.dispatch(rows, 0.0, pool=[0, 1])
                    .model_version for _ in range(6)}
        assert versions == {1}

    def test_pool_round_robin_cursor_is_independent(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=3),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        rows = np.zeros((1, registry.get(1).compiled.num_features))
        pooled = [replicas.dispatch(rows, 0.0, pool=[0, 1]).worker
                  for _ in range(4)]
        assert pooled == [0, 1, 0, 1]
        # the global cursor never moved while the pool cycled
        assert replicas.dispatch(rows, 0.0).worker == 0

    def test_canary_bytes_never_pollute_steady_state(self, registry):
        """``deploy_bytes``/``deploy_raw_bytes`` cover only the
        ``deploy:model`` kind — a subset deploy under another kind must
        leave both untouched (the regression that motivated the per-kind
        breakdown)."""
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=4),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        steady = replicas.deploy_bytes
        steady_raw = replicas.deploy_raw_bytes
        replicas.deploy(2, workers=[2, 3], kind="deploy:canary")
        assert replicas.deploy_bytes == steady
        assert replicas.deploy_raw_bytes == steady_raw

    def test_deploy_bytes_by_kind_breakdown(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=4),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        replicas.deploy(2, workers=[3], kind="deploy:canary")
        by_kind = replicas.deploy_bytes_by_kind()
        assert set(by_kind) == {DEPLOY_KIND, "deploy:canary"}
        assert by_kind[DEPLOY_KIND] == \
            (4 * registry.get(1).nbytes, 4 * registry.get(1).nbytes)
        assert by_kind["deploy:canary"] == \
            (registry.get(2).nbytes, registry.get(2).nbytes)
        # non-deploy kinds never leak into the breakdown
        replicas.network.record("serve:partial", 123, 0.0)
        assert "serve:partial" not in replicas.deploy_bytes_by_kind()

    def test_delta_subset_deploy_attributes_to_callers_kind(
            self, append_registry):
        """A delta-encoded canary deploy keeps its wire bytes *and* its
        raw (full-payload) baseline under the caller's kind, so the
        ``codec:deploy:canary`` savings dimension reports the delta's
        win without touching ``deploy:model``."""
        v1 = append_registry.get(1)
        v2 = append_registry.get(2)
        replicas = ReplicaSet(append_registry,
                              ClusterConfig(num_workers=4),
                              service_model=lambda k: 1e-4,
                              delta_deploys=True)
        replicas.deploy(1)
        replicas.deploy(2, workers=[3], kind="deploy:canary")
        by_kind = replicas.deploy_bytes_by_kind()
        wire, raw = by_kind["deploy:canary"]
        assert raw == v2.nbytes        # full payload baseline
        assert 0 < wire < raw          # the tree-suffix delta shipped
        assert by_kind[DEPLOY_KIND] == (4 * v1.nbytes, 4 * v1.nbytes)
        savings = replicas.network.snapshot().codec_savings_by_kind()
        assert savings == {"codec:deploy:canary": raw - wire}

    def test_occupy_bills_without_serving(self, registry):
        replicas = ReplicaSet(registry, ClusterConfig(num_workers=2),
                              service_model=lambda k: 1e-4)
        replicas.deploy(1)
        free_before = replicas._free.copy()
        worker, start, done = replicas.occupy([1], 0.5, 0.25)
        assert worker == 1
        assert start == pytest.approx(max(0.5, free_before[1]))
        assert done == pytest.approx(start + 0.25)
        assert replicas._free[0] == free_before[0]  # pool 0 untouched
