"""Prediction-cache tests: exactness, keys, LRU, version invalidation.

The cache's contract is that it is *invisible* in the scores — every
answer it returns is the answer the predictor would have produced — so
most tests here compare cached serving against direct computation
bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.core.kernels import MISSING_BIN
from repro.data.dataset import bin_dataset
from repro.serve import (CacheStats, ModelServer, PredictionCache,
                         compile_ensemble)


@pytest.fixture(scope="module")
def trained(small_binary):
    cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=8)
    ensemble = GBDT(cfg).fit(small_binary).ensemble
    cuts = bin_dataset(small_binary, 8).cuts
    return compile_ensemble(ensemble), cuts


def batch(num_rows, num_features, seed=0, missing=0.3):
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((num_rows, num_features))
    rows[rng.random(rows.shape) < missing] = np.nan
    return rows


class TestConstruction:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            PredictionCache(0)

    def test_cut_grid_width_validated(self):
        too_many = [np.arange(MISSING_BIN, dtype=np.float64)]
        with pytest.raises(ValueError, match="missing sentinel"):
            PredictionCache(4, cuts=too_many)

    def test_repr_mentions_fill(self):
        cache = PredictionCache(4)
        assert "entries=0" in repr(cache)


class TestKeys:
    def test_bit_equal_rows_share_float_key(self):
        cache = PredictionCache(4)
        rows = batch(2, 5, seed=1, missing=0.0)
        keys = cache.key_batch(np.vstack([rows, rows]))
        assert keys[0] == keys[2] and keys[1] == keys[3]
        assert keys[0] != keys[1]

    def test_nan_canonicalized_in_float_keys(self):
        cache = PredictionCache(4)
        a = np.array([[1.0, np.nan]])
        # a differently-encoded NaN (here: flipped sign bit) must not
        # split the key
        weird = np.array([[1.0, -np.nan]])
        assert np.asarray(a).tobytes() != np.asarray(weird).tobytes()
        assert cache.key_batch(a) == cache.key_batch(weird)

    def test_same_bin_rows_collapse_with_cuts(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(8, cuts=cuts)
        width = len(cuts)
        base = np.full((1, width), 0.0)
        nudged = base.copy()
        # nudge each value within its bin: strictly below the next cut
        for f, grid in enumerate(cuts):
            upper = grid[np.searchsorted(grid, 0.0)] \
                if np.searchsorted(grid, 0.0) < grid.size else 1e9
            nudged[0, f] = min(0.0 + 1e-12, upper)
        keys = cache.key_batch(np.vstack([base, nudged]))
        assert keys[0] == keys[1]

    def test_nan_maps_to_missing_sentinel_bin(self, trained):
        _, cuts = trained
        cache = PredictionCache(8, cuts=cuts)
        row = np.full((1, len(cuts)), np.nan)
        key = cache.key_batch(row)[0]
        assert key == bytes([MISSING_BIN]) * len(cuts)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            PredictionCache(4).key_batch(np.zeros(3))


class TestServe:
    def test_scores_bit_identical_with_and_without_cache(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(64, cuts=cuts)
        rows = batch(40, compiled.num_features, seed=2)
        rows = np.vstack([rows, rows[:13]])   # guaranteed repeats
        direct = compiled.raw_scores(rows)
        cached, misses = cache.serve(1, rows, compiled.raw_scores)
        np.testing.assert_array_equal(cached, direct)
        # repeats inside one batch miss together (lookup precedes
        # insert); hits come from earlier batches
        assert misses == rows.shape[0]
        # a second pass over the same rows is all hits, still exact
        again, misses2 = cache.serve(1, rows, compiled.raw_scores)
        np.testing.assert_array_equal(again, direct)
        assert misses2 == 0

    def test_ledger_counts(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(64, cuts=cuts)
        rows = batch(10, compiled.num_features, seed=3, missing=0.0)
        cache.serve(1, rows, compiled.raw_scores)
        cache.serve(1, rows, compiled.raw_scores)
        assert cache.stats.hits == 10
        assert cache.stats.misses == 10
        assert cache.stats.inserts == 10
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.to_dict()["hit_rate"] == pytest.approx(0.5)

    def test_lru_eviction_order(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(2, cuts=cuts)
        rows = batch(3, compiled.num_features, seed=4, missing=0.0)
        cache.serve(1, rows[:1], compiled.raw_scores)   # A
        cache.serve(1, rows[1:2], compiled.raw_scores)  # B
        cache.serve(1, rows[:1], compiled.raw_scores)   # touch A
        cache.serve(1, rows[2:3], compiled.raw_scores)  # C evicts B
        assert cache.stats.evictions == 1
        before = cache.stats.hits
        cache.serve(1, rows[:1], compiled.raw_scores)   # A still hits
        assert cache.stats.hits == before + 1
        cache.serve(1, rows[1:2], compiled.raw_scores)  # B was evicted
        assert cache.stats.misses == 3 + 1

    def test_version_change_invalidates(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(32, cuts=cuts)
        rows = batch(5, compiled.num_features, seed=5)
        cache.serve(1, rows, compiled.raw_scores)
        assert len(cache) == 5 and cache.version == 1
        cache.serve(2, rows, compiled.raw_scores)
        assert cache.version == 2
        assert cache.stats.invalidations == 1
        # post-swap lookups recomputed, not served stale
        assert cache.stats.misses == 10 and cache.stats.hits == 0

    def test_duplicate_rows_inside_one_batch(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(32, cuts=cuts)
        row = batch(1, compiled.num_features, seed=6)
        rows = np.vstack([row, row, row])
        scores, misses = cache.serve(1, rows, compiled.raw_scores)
        # duplicates miss together (they are computed in one batch)
        # but only one entry is stored
        assert misses == 3 and len(cache) == 1
        np.testing.assert_array_equal(scores[0], scores[1])
        np.testing.assert_array_equal(scores[0], scores[2])

    def test_float_fallback_without_cuts(self, trained):
        compiled, _ = trained
        cache = PredictionCache(32)
        rows = batch(8, compiled.num_features, seed=7)
        direct = compiled.raw_scores(rows)
        got, _ = cache.serve(1, rows, compiled.raw_scores)
        np.testing.assert_array_equal(got, direct)
        _, misses = cache.serve(1, rows, compiled.raw_scores)
        assert misses == 0


class TestStats:
    def test_empty_ledger(self):
        stats = CacheStats()
        assert stats.lookups == 0 and stats.hit_rate == 0.0


class TestServerIntegration:
    def test_model_server_bills_only_misses(self, trained):
        compiled, cuts = trained
        cache = PredictionCache(64, cuts=cuts)
        billed = []

        def service(k):
            billed.append(k)
            return 0.001

        server = ModelServer(compiled, service_model=service,
                             cache=cache)
        rows = batch(6, compiled.num_features, seed=8)
        server.dispatch(rows, 0.0)
        server.dispatch(rows, 1.0)
        assert billed == [6, 0]


class TestRollbackInvalidation:
    """Regression: a registry *rollback* must flush the cache exactly
    like a hot-swap — eagerly, at the decision instant, before any
    serve call could hand out a stale score."""

    def build(self, small_binary):
        from repro.serve import ModelRegistry

        registry = ModelRegistry()
        for trees in (3, 2):
            cfg = TrainConfig(num_trees=trees, num_layers=3,
                              num_candidates=8)
            registry.publish(GBDT(cfg).fit(small_binary).ensemble)
        cache = PredictionCache(64)
        registry.attach_cache(cache)
        return registry, cache

    def test_rollback_flushes_at_decision_instant(self, small_binary):
        registry, cache = self.build(small_binary)
        registry.activate(2)
        rows = batch(8, registry.active.compiled.num_features, seed=11)
        cache.serve(2, rows, registry.active.compiled.raw_scores)
        assert len(cache) > 0 and cache.version == 2
        registry.rollback()
        # flushed eagerly — no serve() call in between
        assert len(cache) == 0 and cache.version == 1
        assert cache.stats.invalidations == 1

    def test_roll_back_of_active_canary_flushes(self, small_binary):
        registry, cache = self.build(small_binary)
        registry.stage_canary(2)
        registry.promote(2)
        rows = batch(8, registry.active.compiled.num_features, seed=12)
        cache.serve(2, rows, registry.active.compiled.raw_scores)
        registry.roll_back(2)
        assert len(cache) == 0 and cache.version == 1

    def test_retiring_a_non_active_canary_keeps_entries(
            self, small_binary):
        registry, cache = self.build(small_binary)
        registry.stage_canary(2)
        rows = batch(8, registry.active.compiled.num_features, seed=13)
        cache.serve(1, rows, registry.active.compiled.raw_scores)
        stored = len(cache)
        registry.roll_back(2)  # incumbent keeps serving: no flush
        assert len(cache) == stored and cache.version == 1
