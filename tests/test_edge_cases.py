"""Robustness edge cases across the stack."""

from __future__ import annotations

import numpy as np

from repro import (ClusterConfig, GBDT, TrainConfig, make_classification,
                   make_system)
from repro.data.dataset import Dataset, bin_dataset
from repro.data.matrix import CSRMatrix


def tiny_dataset(labels, dense):
    return Dataset(CSRMatrix.from_dense(np.asarray(dense, dtype=float)),
                   np.asarray(labels))


class TestDegenerateData:
    def test_constant_labels_yield_stump_free_model(self):
        """All-one-class data: no split has positive gain; every tree is
        a single leaf and predictions drift toward the class."""
        dense = np.random.default_rng(0).standard_normal((50, 4))
        ds = tiny_dataset(np.ones(50, dtype=np.int64), dense)
        cfg = TrainConfig(num_trees=3, num_layers=4)
        result = GBDT(cfg).fit(ds)
        for tree in result.ensemble.trees:
            assert tree.num_splits == 0
        preds = GBDT(cfg).predict(result.ensemble, ds)
        assert np.all(preds > 0.5)

    def test_constant_features(self):
        """Features with a single value propose no candidate splits."""
        dense = np.ones((40, 3))
        labels = np.array([0, 1] * 20)
        ds = tiny_dataset(labels, dense)
        binned = bin_dataset(ds, 8)
        assert binned.bins_per_feature.tolist() == [1, 1, 1]
        result = GBDT(TrainConfig(num_trees=2, num_layers=3)).fit(
            ds, binned=binned)
        assert all(t.num_splits == 0 for t in result.ensemble.trees)

    def test_single_instance(self):
        ds = tiny_dataset([1], [[1.0, 2.0]])
        result = GBDT(TrainConfig(num_trees=1, num_layers=3)).fit(ds)
        assert result.ensemble.trees[0].num_splits == 0

    def test_two_instances_can_split(self):
        ds = tiny_dataset([0, 1], [[1.0], [2.0]])
        cfg = TrainConfig(num_trees=1, num_layers=2, reg_lambda=0.1)
        result = GBDT(cfg).fit(ds)
        tree = result.ensemble.trees[0]
        assert tree.num_splits == 1
        preds = GBDT(cfg).predict(result.ensemble, ds)
        assert preds[0] < 0.5 < preds[1]

    def test_all_missing_feature(self):
        """A feature with no stored values never splits."""
        rows = [[(0, 1.0)], [(0, 2.0)], [(0, 3.0)], [(0, 4.0)]]
        ds = Dataset(CSRMatrix.from_rows(rows, num_cols=3),
                     np.array([0, 0, 1, 1]))
        binned = bin_dataset(ds, 8)
        assert binned.bins_per_feature[1] == 1
        assert binned.bins_per_feature[2] == 1
        result = GBDT(TrainConfig(num_trees=1, num_layers=3)).fit(
            ds, binned=binned)
        for node in result.ensemble.trees[0].internal_nodes():
            assert node.split.feature == 0


class TestDistributedDegenerate:
    def test_more_workers_than_features(self):
        ds = make_classification(300, 3, density=1.0, seed=9)
        cfg = TrainConfig(num_trees=2, num_layers=3, num_candidates=8)
        binned = bin_dataset(ds, cfg.num_candidates)
        result = make_system("vero", cfg, ClusterConfig(6)).fit(binned)
        assert len(result.ensemble) == 2

    def test_more_workers_than_instances(self):
        ds = make_classification(4, 10, density=1.0, seed=10)
        cfg = TrainConfig(num_trees=1, num_layers=2, num_candidates=4)
        binned = bin_dataset(ds, cfg.num_candidates)
        for name in ("qd1", "qd2", "qd4"):
            result = make_system(name, cfg, ClusterConfig(8)).fit(binned)
            assert len(result.ensemble) == 1

    def test_single_tree_layer_two(self):
        ds = make_classification(500, 10, density=1.0, seed=11)
        cfg = TrainConfig(num_trees=1, num_layers=2, num_candidates=8)
        binned = bin_dataset(ds, cfg.num_candidates)
        result = make_system("qd2", cfg, ClusterConfig(3)).fit(binned)
        assert result.ensemble.trees[0].num_leaves <= 2

    def test_zero_gain_everywhere_stops_early(self):
        """Labels independent of features + strong gamma: trees stop at
        the root and the loop exits before the depth budget."""
        rng = np.random.default_rng(12)
        dense = rng.standard_normal((200, 5))
        ds = tiny_dataset(rng.integers(0, 2, 200), dense)
        cfg = TrainConfig(num_trees=1, num_layers=7, reg_gamma=1e6)
        binned = bin_dataset(ds, 8)
        result = make_system("vero", cfg, ClusterConfig(2)).fit(binned)
        assert result.ensemble.trees[0].num_splits == 0
