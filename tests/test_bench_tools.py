"""Tests of the benchmark harness and report formatting."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.bench.harness import BinnedCache, ExperimentPoint, run_point, \
    sweep
from repro.bench.report import (convergence_series, figure10_table,
                                memory_table, scaled_runtime_table,
                                simple_table)
from repro.systems.base import DistEvalRecord


@pytest.fixture(scope="module")
def small_point():
    ds = make_classification(800, 30, density=0.5, seed=71)
    cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8)
    cache = BinnedCache()
    binned = cache.get(ds, cfg.num_candidates)
    return run_point("qd4", binned, cfg, ClusterConfig(3), num_trees=2,
                     label="tiny"), ds, cfg, cache


class TestHarness:
    def test_run_point_fields(self, small_point):
        point, *_ = small_point
        assert point.system == "qd4"
        assert point.label == "tiny"
        assert point.comp_seconds > 0
        assert point.comm_seconds > 0
        assert point.total_seconds == pytest.approx(
            point.comp_seconds + point.comm_seconds
        )
        assert point.comm_bytes_per_tree > 0
        assert point.histogram_bytes > 0

    def test_binned_cache_reuses(self, small_point):
        _, ds, cfg, cache = small_point
        a = cache.get(ds, cfg.num_candidates)
        b = cache.get(ds, cfg.num_candidates)
        assert a is b
        c = cache.get(ds, cfg.num_candidates + 1)
        assert c is not a

    def test_sweep_labels(self, small_point):
        _, ds, cfg, cache = small_point
        binned = cache.get(ds, cfg.num_candidates)
        points = sweep("qd2", {"w1": binned, "w2": binned}, cfg,
                       ClusterConfig(2), num_trees=1)
        assert [p.label for p in points] == ["w1", "w2"]


def make_point(label="x", comp=0.5, comm=0.25):
    return ExperimentPoint(
        system="qd4", label=label, comp_seconds=comp, comm_seconds=comm,
        comp_std=0.01, comm_std=0.02, comm_bytes_per_tree=1024.0,
        data_bytes=2048, histogram_bytes=4096,
    )


class TestReport:
    def test_figure10_table_contains_rows(self):
        text = figure10_table("T", {"qd4": [make_point("N=1"),
                                            make_point("N=2")]})
        assert "T" in text
        assert text.count("qd4") == 2
        assert "N=2" in text
        assert "1.0KB" in text

    def test_memory_table(self):
        text = memory_table("M", {"qd2": [make_point()]})
        assert "2.0KB" in text and "4.0KB" in text

    def test_scaled_runtime_table(self):
        rows = {"rcv1": {"vero": 1.0, "xgboost": 17.3}}
        text = scaled_runtime_table("Table 3", rows, baseline="vero")
        assert "17.3x" in text
        assert "1.0x" in text
        # baseline column comes last
        header = text.splitlines()[2]
        assert header.strip().endswith("vero")

    def test_scaled_runtime_missing_cell(self):
        rows = {"mc": {"vero": 1.0}}
        text = scaled_runtime_table("T", rows, baseline="vero")
        assert "-" in text

    def test_convergence_series(self):
        evals = [DistEvalRecord(i, "auc", 0.5 + i / 100, i * 1.0)
                 for i in range(20)]
        text = convergence_series("C", {"vero": evals})
        assert "auc" in text
        assert "0.69" in text  # last point always included

    def test_convergence_empty_system_skipped(self):
        text = convergence_series("C", {"vero": []})
        assert "vero" not in text

    def test_simple_table_alignment(self):
        text = simple_table("S", ["a", "bbbb"], [["1", "2"],
                                                 ["333", "4"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines[2:]}) == 1  # aligned widths


class TestNarrative:
    def test_run_summary_sections(self):
        from repro import ClusterConfig, TrainConfig, make_classification
        from repro.bench.narrative import run_summary
        from repro.data.dataset import bin_dataset
        from repro.systems import make_system

        ds = make_classification(600, 25, density=0.6, seed=77)
        train, valid = ds.split(0.8, seed=1)
        cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8)
        binned = bin_dataset(train, cfg.num_candidates)
        result = make_system("vero", cfg, ClusterConfig(3)).fit(
            binned, valid=valid)
        text = run_summary(result, title="demo")
        assert "demo" in text
        assert "computation phases" in text
        assert "histogram" in text
        assert "traffic" in text
        assert "placement-bitmap" in text
        assert "convergence" in text

    def test_run_summary_empty(self):
        from repro.bench.narrative import run_summary
        from repro.core.tree import TreeEnsemble
        from repro.systems.base import DistTrainResult

        result = DistTrainResult(TreeEnsemble(1, 0.1))
        text = run_summary(result)
        assert "trees: 0" in text


class TestBinnedCacheIdentity:
    def test_id_reuse_cannot_poison_cache(self):
        """id() keys are only unique among live objects; the cache must
        pin its key datasets so a recycled id never returns another
        dataset's binned data."""
        from repro import make_classification
        from repro.bench.harness import BinnedCache

        cache = BinnedCache()
        first = make_classification(50, 5, density=1.0, seed=1)
        binned_first = cache.get(first, 4)
        stale_key = (id(first), 4)
        del first  # without pinning, this id could be reused
        second = make_classification(80, 7, density=1.0, seed=2)
        binned_second = cache.get(second, 4)
        assert binned_second.num_instances == 80
        assert binned_second.num_features == 7
        # the original entry still maps to the original data
        kept_dataset, kept_binned = cache._cache[stale_key]
        assert kept_binned is binned_first
        assert kept_dataset.num_instances == 50
