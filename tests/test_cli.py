"""CLI tests: each subcommand end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


class TestDatagen:
    def test_synthetic(self, tmp_path, capsys):
        out = tmp_path / "data.libsvm"
        assert main(["datagen", str(out), "--instances", "100",
                     "--features", "10", "--density", "0.5"]) == 0
        assert out.exists()
        assert "wrote 100 x 10" in capsys.readouterr().out

    def test_catalog(self, tmp_path, capsys):
        out = tmp_path / "susy.libsvm"
        assert main(["datagen", str(out), "--catalog", "susy",
                     "--scale", "0.01"]) == 0
        assert "x 18" in capsys.readouterr().out


class TestTrainPredict:
    def test_train_on_catalog(self, capsys):
        assert main([
            "train", "--catalog", "higgs", "--scale", "0.02",
            "--system", "qd2", "--trees", "3", "--layers", "4",
            "--workers", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "quadrant=QD2" in out
        assert "auc=" in out

    def test_train_save_predict(self, tmp_path, capsys):
        data = tmp_path / "train.libsvm"
        main(["datagen", str(data), "--instances", "400",
              "--features", "15", "--density", "0.6"])
        model = tmp_path / "model.json"
        assert main([
            "train", "--data", str(data), "--trees", "3",
            "--layers", "4", "--workers", "2",
            "--model-out", str(model),
        ]) == 0
        assert model.exists()
        preds = tmp_path / "preds.txt"
        assert main(["predict", str(model), str(data),
                     "--output", str(preds)]) == 0
        values = np.loadtxt(preds)
        assert values.shape == (400,)
        assert np.all((values > 0) & (values < 1))

    def test_requires_one_data_source(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["train", "--trees", "1"])

    def test_multiclass_predict_rows(self, tmp_path):
        from repro import TrainConfig, GBDT, make_classification, \
            save_ensemble
        from repro.data.io import write_libsvm

        ds = make_classification(120, 8, num_classes=3, density=0.8,
                                 seed=3)
        cfg = TrainConfig(num_trees=2, num_layers=3,
                          objective="multiclass", num_classes=3)
        ensemble = GBDT(cfg).fit(ds).ensemble
        model = tmp_path / "mc.json"
        save_ensemble(ensemble, model, objective="multiclass",
                      num_classes=3)
        data = tmp_path / "mc.libsvm"
        write_libsvm(ds, data)
        preds = tmp_path / "preds.txt"
        assert main(["predict", str(model), str(data),
                     "--output", str(preds)]) == 0
        values = np.loadtxt(preds)
        assert values.shape == (120, 3)
        np.testing.assert_allclose(values.sum(axis=1), 1.0, atol=1e-4)


class TestServeBench:
    def test_smoke_end_to_end(self, capsys):
        assert main(["serve-bench", "--smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "exact=True" in out
        assert "hot-swap" in out
        assert "single-version batches=True" in out
        assert "deploy:model traffic:" in out

    def test_saved_model_served(self, tmp_path, capsys):
        data = tmp_path / "train.libsvm"
        main(["datagen", str(data), "--instances", "300",
              "--features", "12", "--density", "0.6"])
        model = tmp_path / "model.json"
        main(["train", "--data", str(data), "--trees", "3",
              "--layers", "4", "--workers", "2",
              "--model-out", str(model)])
        capsys.readouterr()
        assert main(["serve-bench", "--smoke", "--model",
                     str(model)]) == 0
        out = capsys.readouterr().out
        assert "exact=True" in out
        # a single published version means no hot-swap leg
        assert "hot-swap" not in out


class TestPredictMetadata:
    def test_multiclass_routed_by_model_metadata(self, tmp_path):
        # the predict command must read the objective from the model
        # file, not guess from the score shape
        from repro import GBDT, TrainConfig, make_classification, \
            save_ensemble
        from repro.data.io import write_libsvm

        ds = make_classification(150, 10, num_classes=3, density=0.7,
                                 seed=9)
        cfg = TrainConfig(num_trees=2, num_layers=3,
                          objective="multiclass", num_classes=3)
        ensemble = GBDT(cfg).fit(ds).ensemble
        assert ensemble.objective == "multiclass"
        model = tmp_path / "mc.json"
        save_ensemble(ensemble, model)
        data = tmp_path / "mc.libsvm"
        write_libsvm(ds, data)
        preds = tmp_path / "preds.txt"
        assert main(["predict", str(model), str(data),
                     "--output", str(preds)]) == 0
        values = np.loadtxt(preds)
        assert values.shape == (150, 3)
        np.testing.assert_allclose(values.sum(axis=1), 1.0, atol=1e-4)


class TestFaultyTrain:
    def test_train_with_faults_reports_recovery(self, capsys):
        assert main([
            "train", "--catalog", "higgs", "--scale", "0.02",
            "--system", "qd2", "--trees", "3", "--layers", "4",
            "--workers", "3", "--faults", "42:crash=1,drop=0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "seed=42" in out
        assert "retry/recovery traffic=" in out

    def test_malformed_faults_spec_rejected(self):
        with pytest.raises(ValueError, match="fault spec"):
            main([
                "train", "--catalog", "higgs", "--scale", "0.02",
                "--system", "qd2", "--trees", "1", "--layers", "3",
                "--faults", "not-a-spec",
            ])


class TestTrainCodec:
    # delta compresses integer payloads only, so it rides a vertical
    # plan whose wire is placement bitmaps; the histogram codecs ride a
    # horizontal plan whose wire is histogram aggregation
    @pytest.mark.parametrize("codec,system", [
        ("none", "qd2"), ("sparse", "qd2"), ("delta", "vero"),
        ("f16", "qd2"),
    ])
    def test_train_with_codec(self, capsys, codec, system):
        assert main([
            "train", "--catalog", "rcv1", "--scale", "0.05",
            "--system", system, "--trees", "2", "--layers", "4",
            "--workers", "3", "--codec", codec,
        ]) == 0
        out = capsys.readouterr().out
        assert "auc=" in out
        if codec == "none":
            assert "saved" not in out
        else:
            # every non-identity stack compresses something on this
            # sparse workload, and the savings line names the codec
            assert f"codec={codec}: saved" in out
            assert "x total reduction" in out

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--catalog", "rcv1", "--trees", "1",
                  "--codec", "zstd"])


class TestAdvise:
    def test_high_dim_recommends_vero(self, capsys):
        assert main([
            "advise", "--instances", "1000000", "--features", "100000",
            "--nnz-per-instance", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "QD4" in out
        assert "recommendation" in out

    def test_memory_budget_printed(self, capsys):
        assert main([
            "advise", "--instances", "48000000", "--features", "330000",
            "--classes", "9", "--nnz-per-instance", "50",
            "--memory-budget-gb", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "excluded" in out

    def test_crash_rate_adds_recovery_reason(self, capsys):
        assert main([
            "advise", "--instances", "1000000", "--features", "1000",
            "--nnz-per-instance", "100", "--crash-rate", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "recovery" in out

    def test_codec_projections_printed(self, capsys):
        # KDD-cup-like shape: high-dimensional and very sparse, so the
        # per-node histograms sit far below the sparse codec's cutoff
        assert main([
            "advise", "--instances", "150000", "--features", "2000000",
            "--nnz-per-instance", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "byte reduction by codec" in out
        assert "sparse:" in out and "lossless" in out
        assert "f16:" in out and "lossy, opt-in" in out
        # the codec-aware reason points at --codec
        assert "train --codec sparse" in out

    def test_codec_aware_pricing(self, capsys):
        assert main([
            "advise", "--instances", "150000", "--features", "2000000",
            "--nnz-per-instance", "30", "--codec", "sparse",
        ]) == 0
        out = capsys.readouterr().out
        assert "priced with the 'sparse' codec" in out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestDoctor:
    def test_reports_backends_and_selfcheck(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "kernel backends:" in out
        assert "numpy" in out and "numba" in out
        assert "bit-identity self-check" in out
        assert "all available backends are bit-identical" in out

    def test_skip_selfcheck_only_detects(self, capsys):
        assert main(["doctor", "--skip-selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "kernel backends:" in out
        assert "self-check" not in out.replace("--skip-selfcheck", "")

    def test_disable_env_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_BACKENDS", "pyloop")
        assert main(["doctor", "--skip-selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_DISABLE_BACKENDS is masking: pyloop" in out

    def test_miscompare_exits_nonzero(self, capsys, monkeypatch):
        from repro.core.kernels import PyLoopBackend

        original = PyLoopBackend.scatter

        def corrupt(self, hist, keys, entry_rows, grad, hess, size,
                    hess_const=None):
            original(self, hist, keys, entry_rows, grad, hess, size,
                     hess_const=hess_const)
            hist.grad += 1e-9

        monkeypatch.setattr(PyLoopBackend, "scatter", corrupt)
        assert main(["doctor"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestBackendFlags:
    def test_train_backend_flag_reported(self, capsys):
        assert main([
            "train", "--catalog", "higgs", "--scale", "0.02",
            "--trees", "2", "--layers", "3", "--workers", "2",
            "--backend", "pyloop",
        ]) == 0
        assert "backend=pyloop" in capsys.readouterr().out

    def test_train_backend_auto_resolves(self, capsys):
        assert main([
            "train", "--catalog", "higgs", "--scale", "0.02",
            "--trees", "2", "--layers", "3", "--workers", "2",
            "--backend", "auto",
        ]) == 0
        # auto resolves to a concrete backend name, never the alias
        assert "backend=auto" not in capsys.readouterr().out

    def test_train_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            main(["train", "--catalog", "higgs", "--scale", "0.02",
                  "--trees", "1", "--backend", "cuda"])

    def test_serve_bench_backend_and_quantized(self, capsys):
        assert main(["serve-bench", "--smoke", "--seed", "3",
                     "--backend", "pyloop", "--quantized"]) == 0
        out = capsys.readouterr().out
        assert "backend=pyloop" in out
        assert "quantized (uint8 bins)" in out
        assert "exact=True" in out

    def test_advise_backend_prices_compute(self, capsys):
        assert main(["advise", "--instances", "100000", "--features",
                     "50", "--nnz-per-instance", "20", "--workers", "4",
                     "--backend", "numba"]) == 0
        out = capsys.readouterr().out
        assert "compute priced for the 'numba' kernel backend" in out


class TestDeploy:
    def test_degraded_episode_rolls_back(self, capsys, tmp_path):
        report = tmp_path / "deploy.json"
        assert main(["deploy", "--scale", "0.25",
                     "--report-out", str(report)]) == 0
        out = capsys.readouterr().out
        assert "verdict: rollback" in out
        assert "retrained v3" in out
        assert "VIOLATED" not in out
        assert main(["deploy", "--show", str(report)]) == 0
        assert "verdict: rollback" in capsys.readouterr().out

    def test_healthy_canary_promotes(self, capsys):
        assert main(["deploy", "--scale", "0.25",
                     "--canary", "healthy"]) == 0
        assert "verdict: promote" in capsys.readouterr().out

    def test_shadow_mode(self, capsys):
        assert main(["deploy", "--scale", "0.25", "--shadow"]) == 0
        out = capsys.readouterr().out
        assert "shadow mode" in out
        assert "shadow_serves_incumbent_only=ok" in out
