"""Synthetic generator tests (the Section 5.2 recipe)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_classification, make_regression


class TestClassification:
    def test_shape_and_labels(self):
        ds = make_classification(300, 40, num_classes=3, density=0.3,
                                 seed=1)
        assert ds.num_instances == 300
        assert ds.num_features == 40
        assert ds.task == "multiclass"
        assert set(np.unique(ds.labels)) <= {0, 1, 2}

    def test_binary_task(self):
        ds = make_classification(100, 10, num_classes=2, seed=2)
        assert ds.task == "binary"
        assert ds.num_classes == 2

    def test_density_respected(self):
        ds = make_classification(400, 100, density=0.1, seed=3)
        # dedup makes realized density slightly below target
        assert 0.05 < ds.density <= 0.11

    def test_dense_generation(self):
        ds = make_classification(50, 20, density=1.0, seed=4)
        assert ds.features.nnz == 50 * 20

    def test_deterministic_by_seed(self):
        a = make_classification(100, 10, seed=5)
        b = make_classification(100, 10, seed=5)
        assert a.features == b.features
        np.testing.assert_array_equal(a.labels, b.labels)
        c = make_classification(100, 10, seed=6)
        assert not np.array_equal(a.labels, c.labels)

    def test_noise_zero_is_separable_by_linear_model(self):
        """Labels are argmax of a linear score; with no noise the task is
        deterministic given features."""
        a = make_classification(200, 15, noise=0.0, seed=7)
        b = make_classification(200, 15, noise=0.0, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_both_classes_present(self):
        ds = make_classification(500, 20, seed=8)
        assert np.unique(ds.labels).size == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make_classification(10, 5, num_classes=1)
        with pytest.raises(ValueError):
            make_classification(10, 5, density=0.0)
        with pytest.raises(ValueError):
            make_classification(10, 5, informative_ratio=1.5)

    def test_rows_have_unique_sorted_columns(self):
        ds = make_classification(200, 50, density=0.2, seed=9)
        for _, cols, _ in ds.features.iter_rows():
            assert np.all(np.diff(cols) > 0)


class TestRegression:
    def test_labels_are_floats(self):
        ds = make_regression(100, 10, seed=10)
        assert ds.task == "regression"
        assert ds.labels.dtype == np.float64

    def test_noiseless_labels_reproducible_from_weights(self):
        a = make_regression(100, 10, noise=0.0, seed=11)
        b = make_regression(100, 10, noise=0.0, seed=11)
        np.testing.assert_array_equal(a.labels, b.labels)
