"""CSR/CSC sparse matrix tests: construction, validation, conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.matrix import CSCMatrix, CSRMatrix


def random_dense(rng, rows, cols, density=0.4):
    dense = rng.standard_normal((rows, cols))
    dense[rng.random((rows, cols)) > density] = 0.0
    return dense


class TestCSRConstruction:
    def test_from_dense_round_trip(self, rng):
        dense = random_dense(rng, 13, 7)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_from_rows(self):
        rows = [[(0, 1.0), (3, 2.0)], [], [(1, -1.0)]]
        csr = CSRMatrix.from_rows(rows, num_cols=4)
        assert csr.shape == (3, 4)
        assert csr.nnz == 3
        cols, vals = csr.row(0)
        np.testing.assert_array_equal(cols, [0, 3])
        np.testing.assert_array_equal(vals, [1.0, 2.0])
        cols, vals = csr.row(1)
        assert cols.size == 0

    def test_from_rows_sorts_pairs(self):
        csr = CSRMatrix.from_rows([[(3, 30.0), (1, 10.0)]], num_cols=4)
        cols, vals = csr.row(0)
        np.testing.assert_array_equal(cols, [1, 3])
        np.testing.assert_array_equal(vals, [10.0, 30.0])

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(np.array([1, 2]), np.array([0, 0]),
                      np.array([1.0, 1.0]), 2)

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(np.array([0, 2, 1, 3]), np.array([0, 1, 0]),
                      np.array([1.0, 1.0, 1.0]), 2)

    def test_rejects_out_of_range_column(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), 2)

    def test_rejects_misaligned_values(self):
        with pytest.raises(ValueError, match="equal length"):
            CSRMatrix(np.array([0, 2]), np.array([0, 1]),
                      np.array([1.0]), 2)


class TestCSRAccess:
    def test_row_out_of_range(self, rng):
        csr = CSRMatrix.from_dense(random_dense(rng, 3, 3))
        with pytest.raises(IndexError):
            csr.row(3)
        with pytest.raises(IndexError):
            csr.row(-1)

    def test_iter_rows_covers_all(self, rng):
        dense = random_dense(rng, 9, 5)
        csr = CSRMatrix.from_dense(dense)
        seen = np.zeros_like(dense)
        for i, cols, vals in csr.iter_rows():
            seen[i, cols] = vals
        np.testing.assert_array_equal(seen, dense)

    def test_row_lengths(self, rng):
        dense = random_dense(rng, 6, 4)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(
            csr.row_lengths(), (dense != 0).sum(axis=1)
        )

    def test_nbytes_positive(self, rng):
        csr = CSRMatrix.from_dense(random_dense(rng, 4, 4))
        assert csr.nbytes > 0


class TestCSRSelection:
    def test_select_rows(self, rng):
        dense = random_dense(rng, 10, 6)
        csr = CSRMatrix.from_dense(dense)
        picked = csr.select_rows(np.array([7, 2, 2, 0]))
        np.testing.assert_array_equal(
            picked.to_dense(), dense[[7, 2, 2, 0]]
        )

    def test_select_rows_empty(self, rng):
        csr = CSRMatrix.from_dense(random_dense(rng, 5, 3))
        picked = csr.select_rows(np.array([], dtype=np.int64))
        assert picked.shape == (0, 3)

    def test_select_rows_out_of_range(self, rng):
        csr = CSRMatrix.from_dense(random_dense(rng, 5, 3))
        with pytest.raises(IndexError):
            csr.select_rows(np.array([5]))

    def test_select_cols_renumber(self, rng):
        dense = random_dense(rng, 8, 6)
        csr = CSRMatrix.from_dense(dense)
        picked = csr.select_cols(np.array([4, 1]))
        np.testing.assert_array_equal(
            picked.to_dense(), dense[:, [4, 1]]
        )

    def test_select_cols_keep_ids(self, rng):
        dense = random_dense(rng, 8, 6)
        csr = CSRMatrix.from_dense(dense)
        picked = csr.select_cols(np.array([0, 5]), renumber=False)
        expected = np.zeros_like(dense)
        expected[:, [0, 5]] = dense[:, [0, 5]]
        assert picked.num_cols == 6
        np.testing.assert_array_equal(picked.to_dense(), expected)


class TestConversions:
    def test_csr_csc_round_trip(self, rng):
        dense = random_dense(rng, 12, 9)
        csr = CSRMatrix.from_dense(dense)
        assert csr.to_csc().to_csr() == csr

    def test_csc_matches_dense(self, rng):
        dense = random_dense(rng, 12, 9)
        csc = CSCMatrix.from_dense(dense)
        np.testing.assert_array_equal(csc.to_dense(), dense)

    def test_csc_col_access(self, rng):
        dense = random_dense(rng, 10, 5)
        csc = CSCMatrix.from_dense(dense)
        for j in range(5):
            rows, vals = csc.col(j)
            expected = np.flatnonzero(dense[:, j])
            np.testing.assert_array_equal(rows, expected)
            np.testing.assert_array_equal(vals, dense[expected, j])

    def test_csc_rows_sorted_within_column(self, rng):
        csc = CSCMatrix.from_dense(random_dense(rng, 30, 4))
        for j in range(4):
            rows, _ = csc.col(j)
            assert np.all(np.diff(rows) > 0)

    def test_csc_col_out_of_range(self, rng):
        csc = CSCMatrix.from_dense(random_dense(rng, 3, 3))
        with pytest.raises(IndexError):
            csc.col(3)

    def test_empty_matrix(self):
        csr = CSRMatrix(np.zeros(1, dtype=np.int64),
                        np.empty(0, dtype=np.int32),
                        np.empty(0), 4)
        assert csr.shape == (0, 4)
        assert csr.to_csc().shape == (0, 4)


@settings(max_examples=30, deadline=None)
@given(
    dense=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 12), st.integers(1, 10)),
        elements=st.floats(-10, 10, allow_nan=False).map(
            lambda x: 0.0 if abs(x) < 2 else x
        ),
    )
)
def test_property_round_trips(dense):
    """CSR<->dense and CSR<->CSC round trips on arbitrary matrices."""
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_array_equal(csr.to_dense(), dense)
    csc = csr.to_csc()
    np.testing.assert_array_equal(csc.to_dense(), dense)
    assert csc.to_csr() == csr


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_select_rows_matches_dense(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    dense = random_dense(rng, 15, 6)
    ids = data.draw(
        st.lists(st.integers(0, 14), min_size=0, max_size=20)
    )
    csr = CSRMatrix.from_dense(dense)
    picked = csr.select_rows(np.array(ids, dtype=np.int64))
    np.testing.assert_array_equal(picked.to_dense(),
                                  dense[np.array(ids, dtype=int)])
