"""Dataset and binning tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import BinnedDataset, Dataset, apply_cuts, \
    bin_dataset
from repro.data.matrix import CSRMatrix
from repro.data.synthetic import make_classification


class TestDatasetValidation:
    def test_label_length_checked(self):
        features = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError, match="labels"):
            Dataset(features, np.array([0, 1]))

    def test_binary_labels_checked(self):
        features = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError, match=r"\{0, 1\}"):
            Dataset(features, np.array([0, 1, 2]))

    def test_multiclass_range_checked(self):
        features = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError, match="lie in"):
            Dataset(features, np.array([0, 1, 5]), task="multiclass",
                    num_classes=3)

    def test_unknown_task(self):
        features = CSRMatrix.from_dense(np.eye(2))
        with pytest.raises(ValueError, match="task"):
            Dataset(features, np.array([0, 1]), task="ranking")

    def test_properties(self, small_binary):
        assert small_binary.num_instances == 1200
        assert small_binary.num_features == 25
        assert 0.3 < small_binary.density <= 0.5


class TestSplit:
    def test_partition_is_exact(self, small_binary):
        train, valid = small_binary.split(0.8, seed=1)
        assert train.num_instances + valid.num_instances == \
            small_binary.num_instances
        assert train.num_features == small_binary.num_features

    def test_rejects_bad_fraction(self, small_binary):
        with pytest.raises(ValueError):
            small_binary.split(1.0)

    def test_seed_controls_split(self, small_binary):
        a1, _ = small_binary.split(0.8, seed=1)
        a2, _ = small_binary.split(0.8, seed=1)
        b, _ = small_binary.split(0.8, seed=2)
        np.testing.assert_array_equal(a1.labels, a2.labels)
        assert not np.array_equal(a1.labels, b.labels)


class TestApplyCuts:
    def test_matches_searchsorted(self, rng):
        dense = rng.standard_normal((50, 4))
        csr = CSRMatrix.from_dense(dense)
        cuts = [np.sort(rng.standard_normal(3)) for _ in range(4)]
        binned = apply_cuts(csr, cuts)
        for i, cols, vals in csr.iter_rows():
            bcols, bvals = binned.row(i)
            np.testing.assert_array_equal(cols, bcols)
            for c, v, b in zip(cols, vals, bvals):
                assert b == np.searchsorted(cuts[c], v, side="left")

    def test_no_cuts_gives_zero_bins(self, rng):
        csr = CSRMatrix.from_dense(rng.standard_normal((5, 2)))
        binned = apply_cuts(csr, [np.empty(0), np.empty(0)])
        assert np.all(binned.values == 0)

    def test_wrong_cut_count(self, rng):
        csr = CSRMatrix.from_dense(rng.standard_normal((5, 2)))
        with pytest.raises(ValueError):
            apply_cuts(csr, [np.empty(0)])


class TestBinDataset:
    def test_bins_in_range(self, small_binary):
        binned = bin_dataset(small_binary, 16)
        assert binned.binned.values.max() < 16
        assert binned.binned.values.min() >= 0
        assert binned.bins_per_feature.max() <= 16

    def test_preserves_sparsity_pattern(self, small_sparse):
        binned = bin_dataset(small_sparse, 8)
        np.testing.assert_array_equal(binned.binned.indptr,
                                      small_sparse.features.indptr)
        np.testing.assert_array_equal(binned.binned.indices,
                                      small_sparse.features.indices)

    def test_threshold_of_round_trip(self, small_binary):
        """Splitting binned data at bin b == thresholding raw at cut b."""
        binned = bin_dataset(small_binary, 8)
        csc_raw = small_binary.csc()
        csc_bin = binned.csc()
        for f in (0, 7, 19):
            cuts = binned.cuts[f]
            for b in range(cuts.size):
                threshold = binned.threshold_of(f, b)
                rows_r, vals_r = csc_raw.col(f)
                rows_b, vals_b = csc_bin.col(f)
                np.testing.assert_array_equal(rows_r, rows_b)
                np.testing.assert_array_equal(
                    vals_r <= threshold, vals_b <= b
                )

    def test_threshold_of_invalid_bin(self, binned_binary):
        with pytest.raises(ValueError):
            binned_binary.threshold_of(0, 99)

    def test_sketch_binning_close_to_exact(self, small_binary):
        exact = bin_dataset(small_binary, 16, method="exact")
        approx = bin_dataset(small_binary, 16, method="sketch")
        # bin boundaries may shift by a rank or two; the overwhelming
        # majority of entries must agree
        agree = np.mean(exact.binned.values == approx.binned.values)
        assert agree > 0.9

    def test_unknown_method(self, small_binary):
        with pytest.raises(ValueError):
            bin_dataset(small_binary, 8, method="magic")


class TestBinnedSelection:
    def test_select_features_renumbers(self, binned_binary):
        group = np.array([3, 11, 17])
        shard = binned_binary.select_features(group)
        assert shard.num_features == 3
        dense_full = binned_binary.binned.to_dense()
        # compare nonzero patterns column by column
        dense_shard = shard.binned.to_dense()
        for local, fid in enumerate(group):
            np.testing.assert_array_equal(dense_shard[:, local],
                                          dense_full[:, fid])
        assert shard.bins_per_feature.tolist() == [
            int(binned_binary.bins_per_feature[f]) for f in group
        ]

    def test_select_instances(self, binned_binary):
        rows = np.arange(100, 200)
        shard = binned_binary.select_instances(rows)
        assert shard.num_instances == 100
        np.testing.assert_array_equal(shard.labels,
                                      binned_binary.labels[rows])

    def test_constructor_validates_cuts(self, binned_binary):
        with pytest.raises(ValueError, match="per feature"):
            BinnedDataset(binned_binary.binned, binned_binary.cuts[:-1],
                          binned_binary.labels, binned_binary.num_bins,
                          "binary", 2)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), q=st.integers(2, 24))
def test_property_binning_respects_quantiles(seed, q):
    """Each bin of a dense feature holds roughly N/q values."""
    ds = make_classification(500, 3, density=1.0, seed=seed)
    binned = bin_dataset(ds, q)
    for f in range(3):
        vals = binned.csc().col(f)[1]
        counts = np.bincount(vals, minlength=q)
        used = counts[counts > 0]
        # quantile binning: no bin is more than ~3x the ideal share
        assert used.max() <= max(3 * 500 / q, 8)
