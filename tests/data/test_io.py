"""LibSVM I/O tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import read_libsvm, write_libsvm
from repro.data.synthetic import make_classification, make_regression


class TestRoundTrip:
    def test_binary(self, tmp_path, small_binary):
        path = tmp_path / "data.libsvm"
        write_libsvm(small_binary, path)
        back = read_libsvm(path, num_features=small_binary.num_features)
        assert back.features == small_binary.features
        np.testing.assert_array_equal(back.labels, small_binary.labels)

    def test_multiclass(self, tmp_path):
        ds = make_classification(50, 8, num_classes=3, seed=1)
        path = tmp_path / "mc.libsvm"
        write_libsvm(ds, path)
        back = read_libsvm(path, num_features=8, task="multiclass",
                           num_classes=3)
        assert back.features == ds.features
        np.testing.assert_array_equal(back.labels, ds.labels)

    def test_regression_precision(self, tmp_path):
        ds = make_regression(30, 5, seed=2)
        path = tmp_path / "reg.libsvm"
        write_libsvm(ds, path)
        back = read_libsvm(path, num_features=5, task="regression")
        np.testing.assert_allclose(back.labels, ds.labels, rtol=1e-15)
        np.testing.assert_allclose(back.features.values,
                                   ds.features.values, rtol=1e-15)


class TestReader:
    def test_parses_fixture(self, tmp_path):
        path = tmp_path / "tiny.libsvm"
        path.write_text(
            "# a comment\n"
            "1 1:0.5 3:2.0\n"
            "0 2:-1.5\n"
            "\n"
            "1\n"
        )
        ds = read_libsvm(path)
        assert ds.num_instances == 3
        assert ds.num_features == 3
        cols, vals = ds.features.row(0)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_allclose(vals, [0.5, 2.0])
        assert ds.features.row(2)[0].size == 0

    def test_unsorted_pairs_are_sorted(self, tmp_path):
        path = tmp_path / "u.libsvm"
        path.write_text("0 3:3.0 1:1.0\n1 2:2.0\n")
        ds = read_libsvm(path)
        cols, vals = ds.features.row(0)
        np.testing.assert_array_equal(cols, [0, 2])

    def test_bad_label(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("spam 1:1.0\n")
        with pytest.raises(ValueError, match="bad label"):
            read_libsvm(path)

    def test_bad_pair(self, tmp_path):
        path = tmp_path / "bad2.libsvm"
        path.write_text("1 1:one\n")
        with pytest.raises(ValueError, match="bad pair"):
            read_libsvm(path)

    def test_zero_index_rejected(self, tmp_path):
        path = tmp_path / "bad3.libsvm"
        path.write_text("1 0:1.0\n")
        with pytest.raises(ValueError, match=">= 1"):
            read_libsvm(path)

    def test_num_features_too_small(self, tmp_path):
        path = tmp_path / "wide.libsvm"
        path.write_text("1 5:1.0\n0 1:1.0\n")
        with pytest.raises(ValueError, match="smaller"):
            read_libsvm(path, num_features=3)

    def test_num_features_widens(self, tmp_path):
        path = tmp_path / "w.libsvm"
        path.write_text("1 1:1.0\n0 1:0.5\n")
        ds = read_libsvm(path, num_features=10)
        assert ds.num_features == 10
