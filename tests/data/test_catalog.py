"""Catalog surrogate tests (Table 2 / Section 6 shapes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import CATALOG, load, names


class TestCatalog:
    def test_all_paper_datasets_present(self):
        expected = {
            "susy", "higgs", "criteo", "epsilon", "rcv1", "synthesis",
            "rcv1-multi", "synthesis-multi", "gender", "age", "taste",
        }
        assert set(CATALOG) == expected

    def test_kinds_partition_table2(self):
        assert set(names("LD")) == {"susy", "higgs", "criteo", "epsilon"}
        assert set(names("HS")) == {"rcv1", "synthesis"}
        assert set(names("MC")) == {"rcv1-multi", "synthesis-multi"}
        assert set(names("IND")) == {"gender", "age", "taste"}
        assert len(names()) == 11

    def test_relative_ordering_matches_paper(self):
        """The regime relations the paper's conclusions rest on."""
        c = CATALOG
        # LD datasets: many instances, few features
        for name in names("LD"):
            assert c[name].num_instances > 10 * c[name].num_features \
                or name == "epsilon"
        # HS datasets: high dimensional and sparse
        for name in names("HS"):
            assert c[name].num_features >= 4000
            assert c[name].density < 0.05
        # MC datasets: more than two classes
        for name in names("MC"):
            assert c[name].num_classes > 2

    @pytest.mark.parametrize("name", ["susy", "rcv1", "rcv1-multi",
                                      "taste"])
    def test_load_produces_declared_shape(self, name):
        entry = CATALOG[name]
        ds = load(name, scale=0.2)
        assert ds.num_features == entry.num_features
        assert ds.num_instances == max(
            int(round(entry.num_instances * 0.2)), 64
        )
        assert ds.num_classes == entry.num_classes
        labels = np.unique(ds.labels)
        assert labels.size >= 2

    def test_load_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("mnist")

    def test_load_bad_scale(self):
        with pytest.raises(ValueError):
            load("susy", scale=0.0)

    def test_deterministic(self):
        a = load("higgs", scale=0.05)
        b = load("higgs", scale=0.05)
        np.testing.assert_array_equal(a.labels, b.labels)
