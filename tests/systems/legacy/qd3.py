"""QD3 — vertical partitioning + column-store (Yggdrasil style).

Two index modes are provided:

* ``"hybrid"`` (default) — the paper's own QD3 implementation
  (Section 5.2.2): per column, choose linear scan with instance-to-node
  lookups or binary search of the node's instances, whichever is cheaper.
* ``"columnwise"`` — pure Yggdrasil: a column-wise node-to-instance index
  gives free per-node slices but costs an ``O(nnz)`` reorder of every
  column at each layer split (Appendix C compares the two).
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from repro.core.histogram import ColumnwiseIndex, Histogram
from repro.core.placement import layer_placements_colstore
from repro.core.split import SplitInfo
from repro.data.matrix import CSCMatrix
from repro.systems.base import WorkerClock
from .vertical import VerticalGBDT


class YggdrasilStyle(VerticalGBDT):
    """Vertical + column-store."""

    quadrant = "QD3"
    name = "yggdrasil-style"

    def __init__(self, config, cluster, index_mode: str = "hybrid") -> None:
        if index_mode not in ("hybrid", "columnwise"):
            raise ValueError(f"unknown index_mode: {index_mode!r}")
        super().__init__(config, cluster)
        self.index_mode = index_mode

    def _setup_storage(self) -> None:
        self.csc_shards: List[CSCMatrix] = [
            shard.csc() for shard in self.shards
        ]
        self.column_indexes: List[ColumnwiseIndex] = []
        if self.index_mode == "columnwise":
            self.column_indexes = [
                ColumnwiseIndex(csc) for csc in self.csc_shards
            ]

    def _reset_tree_state(self) -> None:
        super()._reset_tree_state()
        if self.index_mode == "columnwise" and hasattr(self, "csc_shards"):
            self.column_indexes = [
                ColumnwiseIndex(csc) for csc in self.csc_shards
            ]

    def _build_node_hist(
        self, worker: int, node: int, rows: np.ndarray,
        grad: np.ndarray, hess: np.ndarray,
    ) -> Histogram:
        if self.index_mode == "columnwise":
            hist, _ = self.hist_builder.build_colstore_columnwise(
                self.column_indexes[worker], node, grad, hess,
                self._binned.num_bins,
            )
            return hist
        hist, _, _ = self.hist_builder.build_colstore_hybrid(
            self.csc_shards[worker], rows, self.index.node_of_instance,
            node, grad, hess, self._binned.num_bins,
        )
        return hist

    def _owner_placements(self, worker, splits):
        return layer_placements_colstore(
            self.csc_shards[worker], self.index, splits,
        )

    def _after_layer_split(self, split_nodes: Sequence[int],
                           clock: WorkerClock) -> None:
        """Columnwise mode pays the per-column index reorder here."""
        if self.index_mode != "columnwise" or not split_nodes:
            return
        children = [c for n in split_nodes for c in (2 * n + 1, 2 * n + 2)]
        for worker, column_index in enumerate(self.column_indexes):
            start = time.perf_counter()
            column_index.update_after_split(
                self.index.node_of_instance, children,
            )
            clock.charge(worker, time.perf_counter() - start,
                         phase="node-split")

    def _data_bytes(self) -> int:
        return max(
            csc.nbytes + self._binned.labels.nbytes
            for csc in self.csc_shards
        )
