"""QD2 — horizontal partitioning + row-store (LightGBM / DimBoost style).

Workers keep their row shard in CSR, maintain a node-to-instance index and
use histogram subtraction (the master decides the per-layer schema from
global node counts, Section 4.2.2).  Per tree node, local histograms are
aggregated and split finding is distributed over feature slices:

* :class:`LightGBMStyle` aggregates with **reduce-scatter** — each worker
  ends up owning the aggregated slice of ``D / W`` features and proposes a
  local best split; the global best is elected from the exchange.
* :class:`DimBoostStyle` pushes histograms to a **parameter server**
  (range-sharded over the same workers) and lets the servers find the
  per-slice best splits — the DimBoost architecture [17].
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.comm import (exchange_split_infos, ps_push_histograms,
                            record_collective,
                            reduce_scatter_histograms)
from repro.core.histogram import Histogram
from repro.core.placement import layer_placements_rowstore
from repro.core.split import SplitInfo
from repro.core.tree import Tree, layer_nodes
from repro.systems.base import WorkerClock, subtraction_schedule
from .horizontal import HorizontalGBDT


class LightGBMStyle(HorizontalGBDT):
    """Horizontal + row-store with reduce-scatter aggregation."""

    quadrant = "QD2"
    name = "lightgbm-style"

    def _train_tree(self, grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        cfg = self.config
        self._reset_tree_state()
        tree = Tree(cfg.num_layers, grad.shape[1])
        self._aggregate_stats(0, grad, hess)
        active: Set[int] = {0}

        for layer in range(cfg.num_layers - 1):
            nodes = [n for n in layer_nodes(layer) if n in active]
            if not nodes:
                break
            self._build_local_histograms(nodes, grad, hess, clock)
            splits = self._find_splits(nodes, clock)
            for node in nodes:
                if node not in splits:
                    self._finalize_leaf(tree, node, active)
            self._apply_layer_splits(
                tree, splits, grad, hess, active, clock,
                placement_fn=self._worker_placements,
            )
            if not self.use_subtraction:
                # parents are never consumed by subtraction: drop them
                for store in self.stores:
                    for node in nodes:
                        store.pop(node)
        for node in sorted(active):
            self._finalize_leaf(tree, node, active)
        return tree, self._assemble_leaves()

    # -- histogram construction (row kernel + subtraction) ------------------------

    def _build_local_histograms(
        self,
        nodes: Sequence[int],
        grad: np.ndarray,
        hess: np.ndarray,
        clock: WorkerClock,
    ) -> None:
        counts = {node: self._node_count(node) for node in nodes}
        have_parent = {
            (node - 1) // 2 for node in nodes
            if node > 0 and (node - 1) // 2 in self.stores[0]
        } if self.use_subtraction else set()
        actions = subtraction_schedule(nodes, counts, have_parent)
        for worker, shard in enumerate(self.shards):
            local_g, local_h = self._local_grad(grad, hess, worker)
            index = self.indexes[worker]
            store = self.stores[worker]
            start = time.perf_counter()
            for op, node, other in actions:
                if op == "build":
                    hist, _ = self.hist_builder.build_rowstore(
                        shard.binned, index.rows_of(node), local_g,
                        local_h, self._binned.num_bins,
                    )
                    store.put(node, hist)
                else:  # subtract: node = parent_hist - other(sibling)
                    parent = (node - 1) // 2
                    store.put(node, self.hist_builder.subtract(
                        store.get(parent), store.get(other)))
            # parents consumed this layer are no longer needed
            for op, node, _ in actions:
                if op == "subtract":
                    store.pop((node - 1) // 2)
            clock.charge(worker, time.perf_counter() - start)

    # -- split finding (aggregate + distributed search) -----------------------------

    #: collective pattern used to aggregate one layer's histograms
    aggregation_pattern = "reducescatter"

    def _aggregate_node(self, node: int) -> List[Histogram]:
        """Aggregated feature-slice histograms, one per worker.

        The traffic is charged per layer in :meth:`_find_splits` (real
        systems batch a layer's histograms into one collective)."""
        return reduce_scatter_histograms(
            [store.get(node) for store in self.stores],
            self.feature_ranges, net=None,
        )

    def _find_splits(self, nodes: Sequence[int],
                     clock: WorkerClock) -> Dict[int, SplitInfo]:
        splits: Dict[int, SplitInfo] = {}
        bins = self._binned.bins_per_feature
        payload = 0
        for node in nodes:
            payload += self.stores[0].get(node).nbytes
            slices = self._aggregate_node(node)
            best: Optional[SplitInfo] = None
            for worker, piece in enumerate(slices):
                features = self.feature_ranges[worker]
                if features.size == 0:
                    continue
                start = time.perf_counter()
                candidate = self._decide_split(
                    piece, self.global_stats[node],
                    self._node_count(node), bins[features],
                )
                clock.charge(worker, time.perf_counter() - start,
                             phase="split-find")
                if candidate is not None:
                    candidate = SplitInfo(
                        feature=candidate.feature + int(features[0]),
                        bin=candidate.bin,
                        default_left=candidate.default_left,
                        gain=candidate.gain,
                    )
                    if candidate.better_than(best):
                        best = candidate
            if best is not None:
                splits[node] = best
        record_collective(self.net, "hist-aggregation", payload,
                          self.cluster.num_workers,
                          self.aggregation_pattern)
        exchange_split_infos(len(nodes), self.cluster.num_workers,
                             self.net)
        return splits

    def _worker_placements(
        self, worker: int, splits: Dict[int, SplitInfo]
    ) -> Dict[int, np.ndarray]:
        return layer_placements_rowstore(
            self.shards[worker].binned, self.indexes[worker], splits,
            search_keys=self.shards[worker].search_keys(),
        )


class DimBoostStyle(LightGBMStyle):
    """QD2 with parameter-server aggregation (DimBoost architecture).

    Histograms are pushed to ``W`` range-sharded servers; split finding
    happens server-side on the full aggregated histogram slices, like
    LightGBM's distributed search, but the push moves each worker's entire
    local histogram (no reduce-scatter savings).
    """

    quadrant = "QD2"
    name = "dimboost-style"

    def __init__(self, config, cluster) -> None:
        if config.objective == "multiclass":
            raise ValueError(
                "DimBoost does not support multi-classification "
                "(Section 5.3 of the paper)"
            )
        super().__init__(config, cluster)

    aggregation_pattern = "ps"

    def _aggregate_node(self, node: int) -> List[Histogram]:
        total = ps_push_histograms(
            [store.get(node) for store in self.stores], net=None,
        )
        grad_view = total.grad_view()
        hess_view = total.hess_view()
        slices: List[Histogram] = []
        for features in self.feature_ranges:
            piece = Histogram(max(features.size, 1), total.num_bins,
                              total.gradient_dim)
            if features.size:
                piece.grad[:] = grad_view[features].reshape(
                    piece.grad.shape)
                piece.hess[:] = hess_view[features].reshape(
                    piece.hess.shape)
            slices.append(piece)
        return slices
