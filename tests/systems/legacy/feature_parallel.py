"""Feature-parallel LightGBM (Appendix D of the paper).

Feature-parallel LightGBM does *not* partition the dataset: every worker
loads a full copy and builds histograms only for its assigned feature
subset.  Split finding proceeds like vertical partitioning (local best +
election), but node splitting is local everywhere — no placement bitmap is
broadcast because every worker owns all the data.  The price is ``W``
full copies of the dataset, which is why the paper calls it impractical
for large-scale workloads.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

import numpy as np

from repro.core.split import SplitInfo
from repro.core.tree import Tree
from repro.systems.base import WorkerClock
from .vero import Vero


class LightGBMFeatureParallel(Vero):
    """LightGBM's feature-parallel mode: full data copy per worker."""

    quadrant = "QD2-FP"
    name = "lightgbm-feature-parallel"

    def _split_nodes(
        self,
        tree: Tree,
        splits: Dict[int, SplitInfo],
        grad: np.ndarray,
        hess: np.ndarray,
        active: Set[int],
        clock: WorkerClock,
    ) -> None:
        """Local node splitting on every worker — no bitmap broadcast.

        Each worker evaluates the winning split against its full data
        copy; the placement computation is charged to all workers, and no
        placement traffic hits the network.
        """
        import time

        binned = self._binned
        by_owner = {}
        from repro.core.split import SplitInfo

        for node, split in sorted(splits.items()):
            tree.set_split(node, split,
                           binned.threshold_of(split.feature, split.bin))
            owner = int(self.owner_of_feature[split.feature])
            local = SplitInfo(
                feature=int(self.local_of_feature[split.feature]),
                bin=split.bin,
                default_left=split.default_left,
                gain=split.gain,
            )
            by_owner.setdefault(owner, {})[node] = local
        start = time.perf_counter()
        placements = {}
        for owner, local_splits in by_owner.items():
            placements.update(
                self._owner_placements(owner, local_splits)
            )
        for node in sorted(splits):
            left, right = 2 * node + 1, 2 * node + 2
            self.index.split_node(node, placements[node], left, right)
        clock.charge_all(time.perf_counter() - start, phase="node-split")
        for node in sorted(splits):
            left, right = 2 * node + 1, 2 * node + 2
            self._set_stats(left, grad, hess, clock)
            self._set_stats(right, grad, hess, clock)
            active.discard(node)
            active.update((left, right))

    def _data_bytes(self) -> int:
        """Every worker holds the entire dataset."""
        return self._binned.binned.nbytes + self._binned.labels.nbytes
