"""Frozen pre-refactor quadrant implementations (the PR-1 tree).

These are verbatim copies (imports rewritten to absolute) of the
inheritance-tree quadrant trainers that preceded the ExecutionPlan
refactor.  They serve exactly one purpose: the equivalence suite trains
every registry plan against its legacy counterpart and asserts
bit-identical trees and identical communication accounting, proving the
refactor changed the architecture and nothing else.

Do not edit these files; they are a golden reference, not library code.
"""

from __future__ import annotations

from .feature_parallel import LightGBMFeatureParallel
from .qd1 import XGBoostStyle
from .qd2 import DimBoostStyle, LightGBMStyle
from .qd3 import YggdrasilStyle
from .vero import Vero

#: registry plan key -> (legacy class, constructor kwargs)
LEGACY_SYSTEMS = {
    "qd1": (XGBoostStyle, {}),
    "qd2": (LightGBMStyle, {}),
    "qd2-ps": (DimBoostStyle, {}),
    "qd2-fp": (LightGBMFeatureParallel, {}),
    "qd3": (YggdrasilStyle, {"index_mode": "hybrid"}),
    "qd3-pure": (YggdrasilStyle, {"index_mode": "columnwise"}),
    "vero": (Vero, {}),
}

__all__ = [
    "LEGACY_SYSTEMS",
    "DimBoostStyle",
    "LightGBMFeatureParallel",
    "LightGBMStyle",
    "Vero",
    "XGBoostStyle",
    "YggdrasilStyle",
]
