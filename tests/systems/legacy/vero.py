"""QD4 — Vero: vertical partitioning + row-store (the paper's system).

Each worker keeps its column group as CSR rows of
``(group-local feature id, bin index)`` pairs, uses a node-to-instance
index with histogram subtraction for construction, finds local best splits
without any histogram aggregation, and broadcasts instance placements as
bitmaps (Section 4.2).  ``fit_from_raw`` runs the full five-step
horizontal-to-vertical transformation first (Section 4.2.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cluster.transform import TransformResult, horizontal_to_vertical
from repro.core.histogram import Histogram
from repro.core.placement import layer_placements_rowstore
from repro.core.split import SplitInfo
from repro.data.dataset import Dataset
from repro.systems.base import DistTrainResult
from .vertical import VerticalGBDT


class Vero(VerticalGBDT):
    """Vertical + row-store distributed GBDT."""

    quadrant = "QD4"
    name = "vero"

    def _build_node_hist(
        self, worker: int, node: int, rows: np.ndarray,
        grad: np.ndarray, hess: np.ndarray,
    ) -> Histogram:
        hist, _ = self.hist_builder.build_rowstore(
            self.shards[worker].binned, rows, grad, hess,
            self._binned.num_bins,
        )
        return hist

    def _owner_placements(self, worker, splits):
        return layer_placements_rowstore(
            self.shards[worker].binned, self.index, splits,
            search_keys=self.shards[worker].search_keys(),
        )

    # -- end-to-end path including the transformation -------------------------------

    def fit_from_raw(
        self,
        train: Dataset,
        valid: Optional[Dataset] = None,
        num_trees: Optional[int] = None,
    ) -> Tuple[DistTrainResult, TransformResult]:
        """Transform a horizontally partitioned raw dataset, then train.

        The transformation's sketch-based candidate splits are used for
        training (so its compression is lossless with respect to the
        model, as Section 4.2.1 argues); its cost report rides along.
        """
        transform = horizontal_to_vertical(
            train, self.cluster, self.config.num_candidates, net=self.net,
        )
        result = self.fit(transform.global_binned, valid=valid,
                          num_trees=num_trees)
        return result, transform
