"""Shared machinery of the vertically partitioned quadrants (QD3, QD4).

Each worker owns a column group — all ``N`` values of its assigned
features — plus a full copy of the labels (broadcast in step 5 of the
transformation), so histograms never need aggregation: every worker
proposes a local best split for its features, the master elects the global
best, and only the owner of the winning feature can compute the resulting
instance placement, which it broadcasts as a bitmap (Section 2.2.1,
Figure 4(b); Section 4.2.2).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.bitmap import (bitmap_nbytes, decode_placement,
                              encode_placement)
from repro.cluster.comm import broadcast_bytes, exchange_split_infos
from repro.cluster.partition import vertical_shards
from repro.core.histogram import Histogram, node_totals
from repro.core.indexing import NodeToInstanceIndex
from repro.core.split import SplitInfo
from repro.core.tree import Tree, layer_nodes
from repro.data.dataset import BinnedDataset
from repro.systems.base import DistributedGBDT, HistogramStore, WorkerClock, \
    subtraction_schedule


class VerticalGBDT(DistributedGBDT):
    """Base class of QD3 and QD4: vertical partitioning."""

    #: column grouping strategy (Section 4.2.3); ablations override
    grouping: str = "greedy"

    def _setup(self, binned: BinnedDataset) -> None:
        num_workers = self.cluster.num_workers
        self.shards, self.groups = vertical_shards(
            binned, num_workers, strategy=self.grouping,
            seed=self.cluster.seed,
        )
        self.owner_of_feature = np.empty(binned.num_features,
                                         dtype=np.int64)
        self.local_of_feature = np.empty(binned.num_features,
                                         dtype=np.int64)
        for worker, group in enumerate(self.groups):
            self.owner_of_feature[group] = worker
            self.local_of_feature[group] = np.arange(group.size)
        self.stores = [
            HistogramStore(pool=self.hist_builder.pool)
            for _ in range(num_workers)
        ]
        self._setup_storage()
        self._reset_tree_state()

    def _setup_storage(self) -> None:
        """Hook for subclasses to materialize their storage pattern."""

    def _reset_tree_state(self) -> None:
        # One physical index stands in for the per-worker replicas: every
        # worker applies identical bitmap updates (Section 4.2.2), so the
        # replicas never diverge.  Update time is charged to all workers.
        self.index = NodeToInstanceIndex(self._binned.num_instances)
        for store in self.stores:
            store.clear()
        self.stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _gradient_instances(self) -> int:
        """Every worker holds all labels and computes all gradients."""
        return self._binned.num_instances

    # -- subclass contract -----------------------------------------------------------

    def _build_node_hist(
        self, worker: int, node: int, rows: np.ndarray,
        grad: np.ndarray, hess: np.ndarray,
    ) -> Histogram:
        """Histogram of one node over the worker's feature group."""
        raise NotImplementedError

    def _owner_placements(
        self, worker: int, splits: Dict[int, SplitInfo],
    ) -> Dict[int, np.ndarray]:
        """``go_left`` per node, computed by the split owner in one pass
        over its shard (``splits`` carries shard-local feature ids)."""
        raise NotImplementedError

    def _after_layer_split(self, split_nodes: Sequence[int],
                           clock: WorkerClock) -> None:
        """Hook for extra per-layer index maintenance (Yggdrasil mode)."""

    # -- the vertical training loop ----------------------------------------------------

    def _train_tree(self, grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        cfg = self.config
        self._reset_tree_state()
        tree = Tree(cfg.num_layers, grad.shape[1])
        self._set_stats(0, grad, hess, clock)
        active: Set[int] = {0}

        for layer in range(cfg.num_layers - 1):
            nodes = [n for n in layer_nodes(layer) if n in active]
            if not nodes:
                break
            self._build_histograms(nodes, grad, hess, clock)
            splits = self._find_splits(nodes, clock)
            for node in nodes:
                if node not in splits:
                    self._finalize_leaf(tree, node, active)
            self._split_nodes(tree, splits, grad, hess, active, clock)
            self._after_layer_split(sorted(splits), clock)
            if not self.use_subtraction:
                # parents are never consumed by subtraction: drop them
                for store in self.stores:
                    for node in nodes:
                        store.pop(node)
        for node in sorted(active):
            self._finalize_leaf(tree, node, active)
        return tree, self.index.node_of_instance.copy()

    def _set_stats(self, node: int, grad: np.ndarray, hess: np.ndarray,
                   clock: WorkerClock) -> None:
        """Node totals — computed identically on every worker."""
        start = time.perf_counter()
        self.stats[node] = node_totals(self.index.rows_of(node), grad,
                                       hess)
        clock.charge_all(time.perf_counter() - start,
                         phase="split-find")

    def _build_histograms(
        self,
        nodes: Sequence[int],
        grad: np.ndarray,
        hess: np.ndarray,
        clock: WorkerClock,
    ) -> None:
        counts = {node: self.index.count_of(node) for node in nodes}
        have_parent = {
            (node - 1) // 2 for node in nodes
            if node > 0 and (node - 1) // 2 in self.stores[0]
        } if self.use_subtraction else set()
        actions = subtraction_schedule(nodes, counts, have_parent)
        for worker in range(self.cluster.num_workers):
            if self.groups[worker].size == 0:
                continue  # worker owns no features (W > D)
            store = self.stores[worker]
            start = time.perf_counter()
            for op, node, other in actions:
                if op == "build":
                    hist = self._build_node_hist(
                        worker, node, self.index.rows_of(node), grad,
                        hess,
                    )
                    store.put(node, hist)
                else:
                    parent = (node - 1) // 2
                    store.put(node, self.hist_builder.subtract(
                        store.get(parent), store.get(other)))
            for op, node, _ in actions:
                if op == "subtract":
                    store.pop((node - 1) // 2)
            clock.charge(worker, time.perf_counter() - start)

    def _find_splits(self, nodes: Sequence[int],
                     clock: WorkerClock) -> Dict[int, SplitInfo]:
        """Local best per worker, global election (no aggregation)."""
        splits: Dict[int, SplitInfo] = {}
        bins = self._binned.bins_per_feature
        for node in nodes:
            best: Optional[SplitInfo] = None
            for worker, group in enumerate(self.groups):
                if group.size == 0:
                    continue
                start = time.perf_counter()
                candidate = self._decide_split(
                    self.stores[worker].get(node), self.stats[node],
                    self.index.count_of(node), bins[group],
                )
                clock.charge(worker, time.perf_counter() - start,
                             phase="split-find")
                if candidate is not None:
                    candidate = SplitInfo(
                        feature=int(group[candidate.feature]),
                        bin=candidate.bin,
                        default_left=candidate.default_left,
                        gain=candidate.gain,
                    )
                    if candidate.better_than(best):
                        best = candidate
            if best is not None:
                splits[node] = best
        # one exchange covers every node of the layer
        exchange_split_infos(len(nodes), self.cluster.num_workers,
                             self.net)
        return splits

    def _split_nodes(
        self,
        tree: Tree,
        splits: Dict[int, SplitInfo],
        grad: np.ndarray,
        hess: np.ndarray,
        active: Set[int],
        clock: WorkerClock,
    ) -> None:
        binned = self._binned
        # Group the layer's splits by owner; each owner computes all of
        # its placements in ONE pass over its shard (O(rows + entries)
        # per layer, the Section 3.2.4 node-splitting bound).
        by_owner: Dict[int, Dict[int, SplitInfo]] = {}
        for node, split in sorted(splits.items()):
            tree.set_split(node, split,
                           binned.threshold_of(split.feature, split.bin))
            owner = int(self.owner_of_feature[split.feature])
            local = SplitInfo(
                feature=int(self.local_of_feature[split.feature]),
                bin=split.bin,
                default_left=split.default_left,
                gain=split.gain,
            )
            by_owner.setdefault(owner, {})[node] = local
        placements: Dict[int, np.ndarray] = {}
        payloads: Dict[int, bytes] = {}
        bitmap_bytes = 0
        for owner, local_splits in by_owner.items():
            start = time.perf_counter()
            owner_placements = self._owner_placements(owner, local_splits)
            for node, go_left in owner_placements.items():
                payloads[node] = encode_placement(go_left)
                bitmap_bytes += bitmap_nbytes(go_left.size)
            clock.charge(owner, time.perf_counter() - start,
                         phase="node-split")
            placements.update(owner_placements)
        # one placement broadcast per layer: at most ceil(N/8) bytes of
        # bitmap covering every split node (Section 3.1.3)
        broadcast_bytes(bitmap_bytes, self.cluster.num_workers, self.net,
                        kind="placement-bitmap")
        start = time.perf_counter()
        for node in sorted(splits):
            decoded = decode_placement(payloads[node],
                                       placements[node].size)
            left, right = 2 * node + 1, 2 * node + 2
            self.index.split_node(node, decoded, left, right)
        clock.charge_all(time.perf_counter() - start, phase="node-split")
        for node in sorted(splits):
            left, right = 2 * node + 1, 2 * node + 2
            self._set_stats(left, grad, hess, clock)
            self._set_stats(right, grad, hess, clock)
            active.discard(node)
            active.update((left, right))

    def _finalize_leaf(self, tree: Tree, node: int,
                       active: Set[int]) -> None:
        tree.set_leaf(node, self._leaf(self.stats[node]))
        active.discard(node)
        self.index.retire_node(node)
        for store in self.stores:
            store.pop(node)

    # -- accounting ---------------------------------------------------------------------

    def _data_bytes(self) -> int:
        return max(
            shard.binned.nbytes + self._binned.labels.nbytes
            for shard in self.shards
        )

    def _histogram_peak_bytes(self) -> int:
        return max(store.peak_bytes for store in self.stores)
