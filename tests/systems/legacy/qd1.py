"""QD1 — horizontal partitioning + column-store (XGBoost style).

Workers keep their row shard in CSC and maintain an instance-to-node
index.  Histogram construction is a level-wise pass over *all* stored
entries of the shard (Section 4.1): the column kernel scatters every entry
into the histogram of the node its instance currently occupies, so
histogram subtraction cannot skip any data.  Local histograms are
aggregated all-reduce style and a leader worker finds every node's best
split; node splitting updates each worker's own index locally.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.cluster.comm import (SPLIT_INFO_BYTES, allreduce_histograms,
                            broadcast_bytes, record_collective)
from repro.core.placement import layer_placements_colstore
from repro.core.split import SplitInfo
from repro.core.tree import Tree, layer_nodes
from repro.data.dataset import BinnedDataset
from repro.data.matrix import CSCMatrix
from repro.systems.base import WorkerClock
from .horizontal import HorizontalGBDT

#: leader worker that owns aggregated histograms and finds splits
LEADER = 0


class XGBoostStyle(HorizontalGBDT):
    """Horizontal + column-store with all-reduce aggregation."""

    quadrant = "QD1"
    name = "xgboost-style"

    def _setup(self, binned: BinnedDataset) -> None:
        super()._setup(binned)
        self.csc_shards: List[CSCMatrix] = [
            shard.csc() for shard in self.shards
        ]

    def _train_tree(self, grad: np.ndarray, hess: np.ndarray,
                    clock: WorkerClock) -> Tuple[Tree, np.ndarray]:
        cfg = self.config
        self._reset_tree_state()
        tree = Tree(cfg.num_layers, grad.shape[1])
        self._aggregate_stats(0, grad, hess)
        active: Set[int] = {0}

        for layer in range(cfg.num_layers - 1):
            nodes = [n for n in layer_nodes(layer) if n in active]
            if not nodes:
                break
            layer_hists = self._build_and_aggregate(nodes, grad, hess,
                                                    clock)
            splits = self._leader_find_splits(nodes, layer_hists, clock)
            for node in nodes:
                if node not in splits:
                    self._finalize_leaf(tree, node, active)
            self._apply_layer_splits(
                tree, splits, grad, hess, active, clock,
                placement_fn=self._worker_placements,
            )
            # QD1 retains nothing: the layer's histograms are discarded.
            for store in self.stores:
                for node in nodes:
                    store.pop(node)
        for node in sorted(active):
            self._finalize_leaf(tree, node, active)
        return tree, self._assemble_leaves()

    # -- histogram construction (level-wise column kernel) -------------------------

    def _build_and_aggregate(
        self,
        nodes: Sequence[int],
        grad: np.ndarray,
        hess: np.ndarray,
        clock: WorkerClock,
    ) -> Dict[int, "np.ndarray"]:
        """Local layer pass on every worker, then all-reduce per node."""
        per_worker: List[List] = []
        for worker, csc in enumerate(self.csc_shards):
            local_g, local_h = self._local_grad(grad, hess, worker)
            index = self.indexes[worker]
            start = time.perf_counter()
            slots = index.slot_of_instance(nodes)
            hists, _ = self.hist_builder.build_colstore_layer(
                csc, slots, len(nodes), local_g, local_h,
                self._binned.num_bins,
            )
            clock.charge(worker, time.perf_counter() - start)
            per_worker.append(hists)
            store = self.stores[worker]
            for node, hist in zip(nodes, hists):
                store.put(node, hist)
        aggregated = {}
        payload = 0
        for slot, node in enumerate(nodes):
            aggregated[node] = allreduce_histograms(
                [hists[slot] for hists in per_worker], net=None,
            )
            payload += aggregated[node].nbytes
        # one all-reduce covers the whole layer (latency paid once)
        record_collective(self.net, "hist-aggregation", payload,
                          self.cluster.num_workers, "allreduce")
        return aggregated

    def _leader_find_splits(
        self,
        nodes: Sequence[int],
        layer_hists: Dict[int, "np.ndarray"],
        clock: WorkerClock,
    ) -> Dict[int, SplitInfo]:
        """The leader enumerates all candidate splits of every node."""
        splits: Dict[int, SplitInfo] = {}
        bins = self._binned.bins_per_feature
        start = time.perf_counter()
        for node in nodes:
            split = self._decide_split(
                layer_hists[node], self.global_stats[node],
                self._node_count(node), bins,
            )
            if split is not None:
                splits[node] = split
        clock.charge(LEADER, time.perf_counter() - start,
                     phase="split-find")
        broadcast_bytes(len(splits) * SPLIT_INFO_BYTES,
                        self.cluster.num_workers, self.net,
                        kind="split-broadcast")
        return splits

    def _worker_placements(
        self, worker: int, splits: Dict[int, SplitInfo]
    ) -> Dict[int, np.ndarray]:
        return layer_placements_colstore(
            self.csc_shards[worker], self.indexes[worker], splits,
        )

    def _data_bytes(self) -> int:
        return max(
            csc.nbytes + shard.labels.nbytes
            for csc, shard in zip(self.csc_shards, self.shards)
        )
