"""Shared machinery of the horizontally partitioned quadrants (QD1, QD2).

Each worker owns a contiguous row range of the dataset and a full copy of
nothing else: histograms must be aggregated across workers before split
finding (Section 2.2.1, Figure 4(a)), and node splitting is purely local —
every worker knows all features of its own rows, so no placement broadcast
is needed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.partition import horizontal_shards
from repro.core.histogram import node_totals
from repro.core.indexing import NodeToInstanceIndex
from repro.core.split import SplitInfo
from repro.core.tree import Tree, layer_nodes
from repro.data.dataset import BinnedDataset
from repro.systems.base import DistributedGBDT, HistogramStore, WorkerClock


class HorizontalGBDT(DistributedGBDT):
    """Base class of QD1 and QD2: horizontal partitioning."""

    def _setup(self, binned: BinnedDataset) -> None:
        num_workers = self.cluster.num_workers
        self.shards, self.row_ranges = horizontal_shards(binned,
                                                         num_workers)
        self.stores = [
            HistogramStore(pool=self.hist_builder.pool)
            for _ in range(num_workers)
        ]
        # contiguous feature ranges used for reduce-scatter / server shards
        bounds = np.linspace(0, binned.num_features,
                             num_workers + 1).astype(np.int64)
        self.feature_ranges = [
            np.arange(bounds[w], bounds[w + 1], dtype=np.int64)
            for w in range(num_workers)
        ]
        self._reset_tree_state()

    def _reset_tree_state(self) -> None:
        self.indexes = [
            NodeToInstanceIndex(shard.num_instances)
            for shard in self.shards
        ]
        for store in self.stores:
            store.clear()
        self.global_stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _gradient_instances(self) -> int:
        """Each worker computes gradients for its own rows only."""
        return max(r.size for r in self.row_ranges)

    # -- helpers shared by QD1/QD2 ------------------------------------------------

    def _local_grad(self, grad: np.ndarray, hess: np.ndarray,
                    worker: int) -> Tuple[np.ndarray, np.ndarray]:
        rows = self.row_ranges[worker]
        return grad[rows], hess[rows]

    def _node_count(self, node: int) -> int:
        return sum(index.count_of(node) for index in self.indexes)

    def _aggregate_stats(self, node: int, grad: np.ndarray,
                         hess: np.ndarray) -> None:
        """Global node totals as the sum of per-worker local totals."""
        total_g = np.zeros(grad.shape[1])
        total_h = np.zeros(hess.shape[1])
        for worker, index in enumerate(self.indexes):
            local_g, local_h = self._local_grad(grad, hess, worker)
            g, h = node_totals(index.rows_of(node), local_g, local_h)
            total_g += g
            total_h += h
        self.global_stats[node] = (total_g, total_h)

    def _apply_layer_splits(
        self,
        tree: Tree,
        splits: Dict[int, SplitInfo],
        grad: np.ndarray,
        hess: np.ndarray,
        active: Set[int],
        clock: WorkerClock,
        placement_fn,
    ) -> None:
        """Split nodes on every worker (local placement computation).

        ``placement_fn(worker, splits) -> {node: go_left}`` encapsulates
        the storage-pattern-specific placement kernel.
        """
        binned = self._binned
        for node, split in splits.items():
            tree.set_split(node, split,
                           binned.threshold_of(split.feature, split.bin))
        for worker, index in enumerate(self.indexes):
            start = time.perf_counter()
            placements = placement_fn(worker, splits)
            for node in splits:
                left, right = 2 * node + 1, 2 * node + 2
                index.split_node(node, placements[node], left, right)
            clock.charge(worker, time.perf_counter() - start,
                         phase="node-split")
        for node in splits:
            left, right = 2 * node + 1, 2 * node + 2
            self._aggregate_stats(left, grad, hess)
            self._aggregate_stats(right, grad, hess)
            active.discard(node)
            active.update((left, right))

    def _finalize_leaf(self, tree: Tree, node: int,
                       active: Set[int]) -> None:
        tree.set_leaf(node, self._leaf(self.global_stats[node]))
        active.discard(node)
        for index in self.indexes:
            index.retire_node(node)
        for store in self.stores:
            store.pop(node)

    def _assemble_leaves(self) -> np.ndarray:
        """Global per-instance leaf ids from the worker-local indexes."""
        leaf = np.empty(self._binned.num_instances, dtype=np.int32)
        for worker, index in enumerate(self.indexes):
            leaf[self.row_ranges[worker]] = index.node_of_instance
        return leaf

    def _data_bytes(self) -> int:
        return max(
            shard.binned.nbytes + shard.labels.nbytes
            for shard in self.shards
        )

    def _histogram_peak_bytes(self) -> int:
        return max(store.peak_bytes for store in self.stores)
