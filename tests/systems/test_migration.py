"""Plan-migration conformance (DESIGN.md §13).

The contract: migrating a :class:`TrainingSession` between any two
registry plans at a tree boundary

1. produces trees bit-identical to the static runs (every plan trains
   the same trees, so the migrated ensemble equals both),
2. leaves the base ledger exactly equal to the source plan's prefix
   kinds plus the target plan's suffix kinds — the only delta is the
   dedicated ``migrate:*`` kinds,
3. holds under seeded chaos schedules (compared against the fault-free
   *migrated* baseline), including a crash injected mid-migration, and
4. replays bit-for-bit.

All 20 ordered pairs from {qd1, qd2, qd3, vero, qd4-blocked} run the
fault-free contract; the chaos and crash-mid-migration rows use the CI
``adapt`` job's pinned seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, make_classification
from repro.core.histogram import HistogramPool
from repro.data.dataset import bin_dataset
from repro.systems.executor import (SessionCheckpoint, TrainingSession)
from repro.systems.migration import (MIGRATE_PREFIX, MIGRATION_LAYER,
                                     MigrationRecord)
from repro.systems.plans import get_plan

from .test_chaos import PINNED_SEEDS, tree_signature

MIGRATION_PLANS = ("qd1", "qd2", "qd3", "vero", "qd4-blocked")
ORDERED_PAIRS = [(a, b) for a in MIGRATION_PLANS for b in MIGRATION_PLANS
                 if a != b]

FAULT_PREFIXES = ("retry:", "recovery:")
NUM_TREES = 4
SWITCH_AT = 2


@pytest.fixture(scope="module")
def binned():
    dataset = make_classification(400, 20, density=0.4, seed=7)
    return bin_dataset(dataset, 8)


def make_config(num_trees=NUM_TREES, **kwargs):
    return TrainConfig(num_trees=num_trees, num_layers=4,
                       num_candidates=8, **kwargs)


def run_static(plan_key, binned, num_trees, faults=""):
    cfg = make_config(num_trees=num_trees, faults=faults)
    system = get_plan(plan_key).build(cfg, ClusterConfig(num_workers=4))
    return system.fit(binned)


def run_migrated(source, target, binned, faults="",
                 scripted_crashes=()):
    """Train SWITCH_AT trees under ``source``, migrate, finish under
    ``target``; returns (result, session, migration record)."""
    cfg = make_config(faults=faults)
    system = get_plan(source).build(cfg, ClusterConfig(num_workers=4))
    session = TrainingSession(system, binned)
    session.run(until=SWITCH_AT)
    session.migrator.scripted_crashes.extend(scripted_crashes)
    record = session.migrate(target)
    result = session.run()
    return result, session, record


def split_ledger(stats):
    """(base, migrate, fault) partitions of a bytes-by-kind ledger."""
    base, migrate, fault = {}, {}, {}
    for kind, nbytes in stats.bytes_by_kind.items():
        if kind.startswith(FAULT_PREFIXES):
            fault[kind] = nbytes
        elif kind.startswith(MIGRATE_PREFIX):
            migrate[kind] = nbytes
        else:
            base[kind] = nbytes
    return base, migrate, fault


def combine_kinds(prefix, full, prefix_of_full):
    """Expected base ledger of a migrated run: source-prefix kinds plus
    the target's full-minus-prefix kinds."""
    expected = dict(prefix)
    for kind, nbytes in full.items():
        suffix = nbytes - prefix_of_full.get(kind, 0)
        if suffix:
            expected[kind] = expected.get(kind, 0) + suffix
    return expected


@pytest.fixture(scope="module")
def static_runs(binned):
    """Per plan: (prefix result at SWITCH_AT trees, full result)."""
    return {
        key: (run_static(key, binned, SWITCH_AT),
              run_static(key, binned, NUM_TREES))
        for key in MIGRATION_PLANS
    }


class TestMigrationBitIdentity:
    """All 20 ordered pairs: bit-identical trees, exact ledger delta."""

    @pytest.mark.parametrize("source,target", ORDERED_PAIRS)
    def test_pair_is_exact(self, binned, static_runs, source, target):
        result, session, record = run_migrated(source, target, binned)

        # 1. bit-identical to the static runs
        full = static_runs[target][1]
        assert len(result.ensemble.trees) == NUM_TREES
        for mine, theirs in zip(result.ensemble.trees,
                                full.ensemble.trees):
            assert tree_signature(mine) == tree_signature(theirs)

        # 2. the base ledger is exactly prefix(source) + suffix(target);
        #    the only delta is the migrate:* kinds
        base, migrate, fault = split_ledger(result.comm)
        assert not fault
        expected = combine_kinds(
            static_runs[source][0].comm.bytes_by_kind,
            full.comm.bytes_by_kind,
            static_runs[target][0].comm.bytes_by_kind,
        )
        assert base == expected
        assert migrate
        assert set(migrate) <= {"migrate:checkpoint", "migrate:reshard",
                                "migrate:labels", "migrate:decision"}
        assert result.comm.total_bytes == \
            sum(expected.values()) + sum(migrate.values())

        # the record's books match the ledger exactly
        assert isinstance(record, MigrationRecord)
        assert record.source_plan == source
        assert record.target_plan == target
        assert record.tree_index == SWITCH_AT
        assert record.wire_bytes == sum(migrate.values())
        assert record.checkpoint_bytes == migrate["migrate:checkpoint"]
        assert record.reshard_bytes == migrate.get("migrate:reshard", 0)
        assert record.label_bytes == migrate.get("migrate:labels", 0)
        assert record.decision_bytes == migrate["migrate:decision"]

        # session bookkeeping
        assert result.plan_history == [source, target]
        assert session.state.plan_key == target
        assert result.migrations == [record]
        assert record.seconds > 0
        assert result.total_modeled_seconds() == pytest.approx(
            sum(r.total_seconds for r in result.tree_reports)
            + record.seconds)

    def test_reshard_only_when_partition_axis_changes(self, binned):
        # qd1 -> qd2 is a storage-only migration: local relayout, no
        # reshard or label traffic on the wire
        _, _, record = run_migrated("qd1", "qd2", binned)
        assert record.reshard_bytes == 0
        assert record.label_bytes == 0
        # leaving horizontal ships both the shards and the labels
        _, _, record = run_migrated("qd2", "vero", binned)
        assert record.reshard_bytes > 0
        assert record.label_bytes == binned.labels.nbytes * 3
        # vertical-to-vertical keeps the partition axis: local relayout
        _, _, record = run_migrated("qd3", "vero", binned)
        assert record.reshard_bytes == 0
        assert record.label_bytes == 0
        # returning to horizontal reshards but owes no label broadcast
        _, _, record = run_migrated("vero", "qd2", binned)
        assert record.reshard_bytes > 0
        assert record.label_bytes == 0

    def test_migration_replays_bit_identical(self, binned):
        first, _, _ = run_migrated("qd2", "qd3", binned)
        second, _, _ = run_migrated("qd2", "qd3", binned)
        assert first.comm.bytes_by_kind == second.comm.bytes_by_kind
        assert first.comm.total_seconds == second.comm.total_seconds
        for t1, t2 in zip(first.ensemble.trees, second.ensemble.trees):
            assert tree_signature(t1) == tree_signature(t2)

    def test_migrating_to_current_plan_rejected(self, binned):
        cfg = make_config()
        session = TrainingSession(
            get_plan("qd2").build(cfg, ClusterConfig(num_workers=4)),
            binned)
        session.run(until=1)
        with pytest.raises(ValueError, match="already executing"):
            session.migrate("qd2")


#: the CI adapt job's chaos rows: ≥3 plan pairs x the pinned seeds
CHAOS_PAIRS = (("qd1", "qd3"), ("qd2", "vero"), ("vero", "qd2"),
               ("qd3", "qd4-blocked"))


class TestMigrationUnderChaos:
    """Migrated runs keep the §9 chaos contract: compared against the
    fault-free *migrated* baseline, the model is bit-identical and the
    ledger delta is exactly the retry:/recovery: kinds."""

    @pytest.mark.parametrize("source,target", CHAOS_PAIRS)
    @pytest.mark.parametrize("fault_seed", PINNED_SEEDS)
    def test_pinned_chaos_migrated_run_is_exact(self, binned, source,
                                                target, fault_seed):
        faults = f"{fault_seed}:crash=2,drop=0.08,timeout=0.03"
        clean, _, clean_record = run_migrated(source, target, binned)
        faulty, session, _ = run_migrated(source, target, binned,
                                          faults=faults)

        for t_clean, t_faulty in zip(clean.ensemble.trees,
                                     faulty.ensemble.trees):
            assert tree_signature(t_clean) == tree_signature(t_faulty)

        base, migrate, fault = split_ledger(faulty.comm)
        clean_base, clean_migrate, _ = split_ledger(clean.comm)
        assert base == clean_base
        assert migrate == clean_migrate
        assert faulty.comm.total_bytes - clean.comm.total_bytes == \
            sum(fault.values())
        assert faulty.comm.total_seconds >= clean.comm.total_seconds

        # every fired crash produced a recovery record (migration did
        # not consume or disturb the pre-drawn schedule)
        counters = session.system.injector.counters
        assert len(session.system.recovery_log) == counters.crashes

    @pytest.mark.parametrize("fault_seed", PINNED_SEEDS)
    def test_crash_mid_migration_recovers(self, binned, fault_seed):
        # a scripted crash aborts the migration attempt; the replay must
        # land on the exact crash-free model and ledger, with the partial
        # attempt reclassified under recovery:migrate:*
        worker = fault_seed % 4
        clean, _, _ = run_migrated("qd2", "qd3", binned)
        crashed, session, record = run_migrated(
            "qd2", "qd3", binned, scripted_crashes=[worker])

        for t_clean, t_crashed in zip(clean.ensemble.trees,
                                      crashed.ensemble.trees):
            assert tree_signature(t_clean) == tree_signature(t_crashed)
        assert record.crashes == 1

        base, migrate, fault = split_ledger(crashed.comm)
        clean_base, clean_migrate, _ = split_ledger(clean.comm)
        assert base == clean_base
        assert migrate == clean_migrate
        assert set(fault) == {"recovery:migrate:checkpoint"}
        assert fault["recovery:migrate:checkpoint"] == \
            record.checkpoint_bytes

        # the abort left a migration-restart recovery record at the
        # sentinel layer
        records = [r for r in session.system.recovery_log
                   if r.policy == "migration-restart"]
        assert len(records) == 1
        assert records[0].layer == MIGRATION_LAYER
        assert records[0].worker == worker
        assert records[0].tree == SWITCH_AT

    def test_crash_mid_migration_under_chaos_schedule(self, binned):
        # scripted migration crash and a seeded fault schedule at once:
        # still bit-identical to the fault-free migrated baseline
        faults = f"{PINNED_SEEDS[0]}:crash=1,drop=0.08"
        clean, _, _ = run_migrated("qd1", "vero", binned)
        crashed, _, record = run_migrated(
            "qd1", "vero", binned, faults=faults, scripted_crashes=[2])
        for t_clean, t_crashed in zip(clean.ensemble.trees,
                                      crashed.ensemble.trees):
            assert tree_signature(t_clean) == tree_signature(t_crashed)
        assert record.crashes == 1
        base, migrate, fault = split_ledger(crashed.comm)
        clean_base, clean_migrate, _ = split_ledger(clean.comm)
        assert base == clean_base
        assert migrate == clean_migrate
        assert "recovery:migrate:checkpoint" in fault


class TestHistogramPoolAcrossMigration:
    def test_pool_reset_and_stats_api(self):
        pool = HistogramPool()
        arr = pool.acquire(4, 8, 1)
        pool.release(arr)
        stats = pool.stats()
        assert set(stats) == {"retained", "hits", "misses"}
        assert stats["retained"] == 1
        assert pool.reset() == 1
        assert pool.stats()["retained"] == 0
        # reset keeps the hit/miss counters (they describe the session)
        assert pool.stats()["misses"] == stats["misses"]
        assert pool.reset() == 0

    def test_migration_resets_the_shared_pool(self, binned):
        _, session, record = run_migrated("qd2", "qd3", binned)
        # the source plan parked buffers; the migration dropped them
        assert record.pool_buffers_dropped > 0
        # and the target kept training through the same (reset) pool
        stats = session.system.hist_builder.pool.stats()
        assert stats["misses"] > 0


class TestSessionPersistence:
    def test_pause_checkpoint_resume_is_exact(self, binned):
        static = run_static("vero", binned, NUM_TREES)
        cfg = make_config()
        session = TrainingSession(
            get_plan("vero").build(cfg, ClusterConfig(num_workers=4)),
            binned)
        session.run(until=SWITCH_AT)
        checkpoint = session.checkpoint()
        assert isinstance(checkpoint, SessionCheckpoint)
        assert checkpoint.tree_index == SWITCH_AT
        assert checkpoint.plan_key == "vero"
        assert checkpoint.tree_checkpoint is not None

        resumed = TrainingSession.resume(
            checkpoint, cfg, ClusterConfig(num_workers=4), binned)
        assert resumed.state.tree_index == SWITCH_AT
        result = resumed.run()
        assert len(result.ensemble.trees) == NUM_TREES
        for mine, theirs in zip(result.ensemble.trees,
                                static.ensemble.trees):
            assert tree_signature(mine) == tree_signature(theirs)

    def test_resumed_session_can_migrate(self, binned):
        static = run_static("qd3", binned, NUM_TREES)
        cfg = make_config()
        session = TrainingSession(
            get_plan("qd2").build(cfg, ClusterConfig(num_workers=4)),
            binned)
        session.run(until=SWITCH_AT)
        resumed = TrainingSession.resume(
            session.checkpoint(), cfg, ClusterConfig(num_workers=4),
            binned)
        resumed.migrate("qd3")
        result = resumed.run()
        assert result.plan_history == ["qd2", "qd3"]
        for mine, theirs in zip(result.ensemble.trees,
                                static.ensemble.trees):
            assert tree_signature(mine) == tree_signature(theirs)

    def test_scores_survive_the_roundtrip(self, binned):
        cfg = make_config()
        session = TrainingSession(
            get_plan("qd1").build(cfg, ClusterConfig(num_workers=4)),
            binned)
        session.run(until=SWITCH_AT)
        resumed = TrainingSession.resume(
            session.checkpoint(), cfg, ClusterConfig(num_workers=4),
            binned)
        np.testing.assert_array_equal(resumed.state.scores,
                                      session.state.scores)
