"""Adaptive re-planning (DESIGN.md §13): calibration and the policy.

Three layers of contract:

1. *Calibration inverts the pricing* — constants fitted to an observed
   ledger reproduce that ledger through :func:`price_plans`, exactly on
   synthetic reports (hypothesis property) and on real training runs.
2. *Pinned switch regime* — starting qd1 on a many-feature workload
   over a slow wire, where qd3 wins, the session must migrate mid-run,
   stay on qd3, and finish with a total modeled cost strictly below the
   worse static plan.
3. *Pinned stay regime* — starting qd3 in the same environment, the
   policy records its decisions but never migrates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, TrainConfig, make_classification
from repro.config import NetworkModel
from repro.data.dataset import bin_dataset
from repro.ledger import format_report, run_report
from repro.systems import make_adaptive_session
from repro.systems.advisor import (AdaptivePolicy, CalibratedConstants,
                                   calibrate_constants, plan_comm_seconds,
                                   price_plans)
from repro.systems.costmodel import WorkloadShape
from repro.systems.plans import PLANS, get_plan, plan_keys

from .test_chaos import tree_signature


class FakeReport:
    def __init__(self, comp_seconds, comm_seconds):
        self.comp_seconds = comp_seconds
        self.comm_seconds = comm_seconds


@settings(max_examples=60, deadline=None)
@given(
    plan_key=st.sampled_from(plan_keys()),
    comp_mean=st.floats(1e-6, 1e3),
    comm_mean=st.floats(1e-6, 1e3),
    jitter=st.floats(0.5, 1.5),
    num_reports=st.integers(1, 8),
    num_instances=st.integers(64, 5000),
    num_features=st.integers(4, 200),
    num_workers=st.integers(2, 8),
)
def test_property_calibration_reproduces_observed_ledger(
        plan_key, comp_mean, comm_mean, jitter, num_reports,
        num_instances, num_features, num_workers):
    """For any plan, shape, and observed per-tree costs, pricing the
    observed plan under the calibrated constants reproduces the observed
    mean compute and communication seconds within float tolerance."""
    shape = WorkloadShape(
        num_instances=num_instances, num_features=num_features,
        num_workers=num_workers, num_layers=4, num_candidates=8,
    )
    network = NetworkModel(bandwidth_gbps=1.0)
    # reports jitter around the mean; calibration sees only their mean
    reports = [
        FakeReport(comp_mean * (jitter if i % 2 else 2.0 - jitter),
                   comm_mean * (jitter if i % 2 else 2.0 - jitter))
        for i in range(num_reports)
    ]
    observed_comp = sum(r.comp_seconds for r in reports) / num_reports
    observed_comm = sum(r.comm_seconds for r in reports) / num_reports
    plan = get_plan(plan_key)
    constants = calibrate_constants(shape, 3.0, plan, reports, network)
    assert constants.trees_observed == num_reports
    priced = price_plans(shape, 3.0, network, constants)[plan_key]
    assert priced.comp_seconds == pytest.approx(observed_comp,
                                                rel=1e-9)
    assert priced.comm_seconds == pytest.approx(observed_comm,
                                                rel=1e-9)


def test_calibration_reproduces_a_real_run():
    binned = bin_dataset(
        make_classification(300, 20, density=0.4, seed=5), 8)
    cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=8)
    cluster = ClusterConfig(num_workers=4)
    result = get_plan("qd2").build(cfg, cluster).fit(binned)
    shape = WorkloadShape(
        num_instances=binned.num_instances,
        num_features=binned.num_features,
        num_workers=4, num_layers=4, num_candidates=8,
    )
    avg_nnz = binned.binned.nnz / binned.num_instances
    constants = calibrate_constants(
        shape, avg_nnz, get_plan("qd2"), result.tree_reports,
        cluster.network)
    priced = price_plans(shape, avg_nnz, cluster.network,
                         constants)["qd2"]
    assert priced.total_seconds == pytest.approx(
        result.mean_tree_seconds(), rel=1e-9)
    # the observed wire really ran, so the fitted scale is meaningful
    assert constants.comm_scale > 0
    assert constants.scan_rate > 0


def test_prior_constants_price_with_defaults():
    shape = WorkloadShape(num_instances=1000, num_features=50,
                          num_workers=4, num_layers=5,
                          num_candidates=16)
    network = NetworkModel()
    prior = price_plans(shape, 10.0, network)
    assert set(prior) == set(PLANS)
    for key, cost in prior.items():
        assert cost.plan_key == key
        assert cost.comp_seconds > 0
        assert cost.comm_seconds == pytest.approx(plan_comm_seconds(
            shape, PLANS[key], network, 10.0))


# --------------------------------------------------------------------------
# pinned regimes: the CI adapt job's auto-adapt E2E rows
# --------------------------------------------------------------------------

#: many features over a slow wire: horizontal aggregation is ruinous,
#: qd3's placement bitmaps are not — the regime where qd3 wins
SWITCH_CANDIDATES = ("qd1", "qd2", "qd3")


@pytest.fixture(scope="module")
def switch_workload():
    binned = bin_dataset(
        make_classification(300, 60, density=0.4, seed=5), 8)
    cluster = ClusterConfig(
        num_workers=4, network=NetworkModel(bandwidth_gbps=0.01))
    return binned, cluster


def run_adaptive(binned, cluster, start_plan):
    cfg = TrainConfig(num_trees=8, num_layers=4, num_candidates=8,
                      adapt=2)
    session = make_adaptive_session(cfg, cluster, binned,
                                    start_plan=start_plan)
    session.policy.candidates = SWITCH_CANDIDATES
    return session.run(), session


class TestSwitchRegime:
    def test_qd1_start_switches_to_qd3_and_stays(self, switch_workload):
        binned, cluster = switch_workload
        result, session = run_adaptive(binned, cluster, "qd1")

        # switched exactly once, at the first consultation, to qd3
        assert result.plan_history == ["qd1", "qd3"]
        assert len(result.migrations) == 1
        assert result.migrations[0].tree_index == 2
        assert session.state.plan_key == "qd3"

        # the switch decision carries its full inputs; later decisions
        # keep confirming qd3 (stay regime after the switch)
        migrating = [d for d in result.decisions if d.migrate]
        assert len(migrating) == 1
        decision = migrating[0]
        assert decision.current_plan == "qd1"
        assert decision.target_plan == "qd3"
        assert decision.projected_savings_seconds > \
            decision.migration_seconds
        assert decision.scan_rate > 0
        assert decision.trees_remaining == 6
        assert set(decision.plan_costs) == set(PLANS)
        for later in result.decisions:
            if later.tree_index > decision.tree_index:
                assert not later.migrate
                assert later.current_plan == "qd3"

        # total modeled cost strictly beats the worse static plan
        static_cfg = TrainConfig(num_trees=8, num_layers=4,
                                 num_candidates=8)
        static = get_plan("qd1").build(static_cfg, cluster).fit(binned)
        assert result.total_modeled_seconds() < \
            static.total_modeled_seconds()

        # and the model is still bit-identical to any static run
        for mine, theirs in zip(result.ensemble.trees,
                                static.ensemble.trees):
            assert tree_signature(mine) == tree_signature(theirs)

    def test_decision_trail_lands_in_the_run_report(self,
                                                    switch_workload):
        binned, cluster = switch_workload
        result, _ = run_adaptive(binned, cluster, "qd1")
        report = run_report(result, system="auto-adapt")
        assert report["plan_history"] == ["qd1", "qd3"]
        assert len(report["migrations"]) == 1
        assert report["migrations"][0]["source_plan"] == "qd1"
        switches = [d for d in report["decisions"] if d["migrate"]]
        assert len(switches) == 1
        for key in ("scan_rate", "comm_scale",
                    "projected_savings_seconds", "migration_seconds"):
            assert key in switches[0]
        assert any(k.startswith("migrate:")
                   for k in report["comm"]["bytes_by_kind"])
        text = format_report(report)
        assert "adaptive decisions" in text
        assert "migrations" in text
        assert "migrate:checkpoint" in text

    def test_switch_regime_replays_bit_identical(self, switch_workload):
        # the wire ledger and decision structure replay exactly; the
        # calibrated scan rate is wall-clock-derived, so only the
        # deterministic decision fields are compared
        binned, cluster = switch_workload
        first, _ = run_adaptive(binned, cluster, "qd1")
        second, _ = run_adaptive(binned, cluster, "qd1")
        assert first.comm.bytes_by_kind == second.comm.bytes_by_kind
        assert first.plan_history == second.plan_history
        stable = ("tree", "source", "target", "migrate",
                  "trees_remaining", "comm_scale", "migration_seconds")
        for d1, d2 in zip(first.decisions, second.decisions):
            p1, p2 = d1.payload(), d2.payload()
            assert {k: p1[k] for k in stable} == \
                {k: p2[k] for k in stable}


class TestStayRegime:
    def test_qd3_start_never_migrates(self, switch_workload):
        binned, cluster = switch_workload
        result, _ = run_adaptive(binned, cluster, "qd3")
        assert result.plan_history == ["qd3"]
        assert result.migrations == []
        # the policy did run — it just kept deciding to stay
        assert result.decisions
        for decision in result.decisions:
            assert not decision.migrate
            assert decision.current_plan == "qd3"
        assert all(not k.startswith("migrate:")
                   for k in result.comm.bytes_by_kind)


class TestPolicyConstruction:
    SHAPE = WorkloadShape(num_instances=100, num_features=10,
                          num_workers=2, num_layers=3,
                          num_candidates=4)

    def test_validation(self):
        with pytest.raises(ValueError, match="every"):
            AdaptivePolicy(self.SHAPE, 2.0, NetworkModel(), every=0)
        with pytest.raises(ValueError, match="margin"):
            AdaptivePolicy(self.SHAPE, 2.0, NetworkModel(), margin=0.0)
        with pytest.raises(KeyError, match="unknown candidate"):
            AdaptivePolicy(self.SHAPE, 2.0, NetworkModel(),
                           candidates=("qd1", "nope"))

    def test_calibrate_rejects_empty_observations(self):
        with pytest.raises(ValueError, match="at least one"):
            calibrate_constants(self.SHAPE, 2.0, get_plan("qd1"), [],
                                NetworkModel())

    def test_constants_carry_the_prior(self):
        constants = CalibratedConstants(scan_rate=1e6, comm_scale=1.1,
                                        trees_observed=3)
        assert constants.prior_scan_rate > 0

    def test_make_adaptive_session_defaults(self):
        binned = bin_dataset(
            make_classification(120, 8, density=0.5, seed=2), 6)
        cfg = TrainConfig(num_trees=2, num_layers=3, num_candidates=6,
                          adapt=3)
        session = make_adaptive_session(cfg, ClusterConfig(num_workers=2),
                                        binned)
        # config.adapt feeds the cadence; the advisor picked the opener
        assert session.policy.every == 3
        assert session.state.plan_key in PLANS
