"""Phase-breakdown tests: the Section 3.2.4 cost ordering.

The paper argues split finding (``O(qD/W)``) and node splitting
(``O(N)``/``O(N/W)``) are both dominated by histogram construction
(``O(Nd/W)``) — here validated on the simulator's measured phase times.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, make_classification, \
    make_system
from repro.data.dataset import bin_dataset
from repro.systems.base import PHASES


@pytest.fixture(scope="module")
def phase_run():
    # dense-ish workload where d (nnz per row) is large relative to q
    ds = make_classification(8_000, 400, density=0.5, seed=55)
    cfg = TrainConfig(num_trees=3, num_layers=6, num_candidates=16)
    binned = bin_dataset(ds, cfg.num_candidates)
    cluster = ClusterConfig(num_workers=4)
    return {
        name: make_system(name, cfg, cluster).fit(binned)
        for name in ("qd2", "qd4")
    }


class TestPhaseBreakdown:
    def test_every_tree_reports_all_phases(self, phase_run):
        for result in phase_run.values():
            for report in result.tree_reports:
                assert set(report.phase_seconds) == set(PHASES)
                assert all(v >= 0 for v in report.phase_seconds.values())

    def test_histogram_construction_dominates(self, phase_run):
        """Section 3.2.4: histogram construction is the most expensive
        computation phase."""
        for name, result in phase_run.items():
            totals = {phase: 0.0 for phase in PHASES}
            for report in result.tree_reports:
                for phase, seconds in report.phase_seconds.items():
                    totals[phase] += seconds
            assert totals["histogram"] == max(totals.values()), (name,
                                                                 totals)
            assert totals["histogram"] > totals["split-find"]
            assert totals["histogram"] > totals["node-split"]

    def test_phases_account_for_most_of_comp(self, phase_run):
        for result in phase_run.values():
            for report in result.tree_reports:
                phase_sum = sum(report.phase_seconds.values())
                # per-phase maxima may exceed or trail the max-of-totals
                # slightly, but must be the same order of magnitude
                assert 0.5 * report.comp_seconds <= phase_sum <= \
                    2.0 * report.comp_seconds
