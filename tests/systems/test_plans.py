"""ExecutionPlan architecture tests.

Three layers of protection around the strategy refactor:

* every registry plan trains bit-identical trees to the single-process
  oracle and to the frozen pre-refactor quadrant classes
  (``tests/systems/legacy``) on fixed seeds, with *exactly* the same
  communication and memory accounting;
* per-plan ``comm_bytes`` stays inside the Section 3 cost-model bounds
  used by the quadrant tests;
* the advisor's recommendation is directly executable
  (``recommend(...).plan.build(...).fit(...)``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (ClusterConfig, GBDT, TrainConfig, get_plan,
                   make_classification, make_system, plan_keys)
from repro.bench.harness import run_point
from repro.config import NetworkModel
from repro.data.dataset import bin_dataset
from repro.systems import PLANS, PlanExecutor
from repro.systems.advisor import recommend
from repro.systems.costmodel import (WorkloadShape,
                                     horizontal_comm_bytes_per_tree,
                                     vertical_comm_bytes_per_tree)
from repro.systems.plans import ExecutionPlan
from tests.systems.legacy import LEGACY_SYSTEMS

#: every registry plan with a pre-refactor equivalent
ALL_PLANS = ["qd1", "qd2", "qd2-ps", "qd2-fp", "qd3", "qd3-pure", "vero"]
VERTICAL_PLANS = ["qd2-fp", "qd3", "qd3-pure", "vero", "qd4-blocked"]
HORIZONTAL_PLANS = ["qd1", "qd2", "qd2-ps"]


def full_signature(tree):
    """Exact structural summary: splits, thresholds, raw leaf weights."""
    parts = []
    for nid in sorted(tree.nodes):
        node = tree.nodes[nid]
        if node.is_leaf:
            parts.append(
                (nid, "leaf",
                 tuple(np.asarray(node.weight).ravel().tolist()))
            )
        else:
            parts.append((nid, node.split.feature, node.split.bin,
                          node.split.default_left,
                          float(node.threshold)))
    return tuple(parts)


def ensemble_signature(ensemble):
    return tuple(full_signature(tree) for tree in ensemble.trees)


@pytest.fixture(scope="module")
def workload():
    dataset = make_classification(500, 40, density=0.4, seed=97)
    cfg = TrainConfig(num_trees=3, num_layers=5, num_candidates=8)
    binned = bin_dataset(dataset, cfg.num_candidates)
    return cfg, dataset, binned


@pytest.fixture(scope="module")
def multiclass_workload():
    dataset = make_classification(360, 25, num_classes=4, density=0.5,
                                  seed=11)
    cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=6,
                      objective="multiclass", num_classes=4)
    binned = bin_dataset(dataset, cfg.num_candidates)
    return cfg, dataset, binned


class TestRegistry:
    def test_all_quadrants_have_plans(self):
        assert set(ALL_PLANS) <= set(plan_keys())

    def test_aliases_resolve(self):
        assert get_plan("xgboost") is PLANS["qd1"]
        assert get_plan("LIGHTGBM") is PLANS["qd2"]
        assert get_plan("dimboost") is PLANS["qd2-ps"]
        assert get_plan("qd4") is PLANS["vero"]

    def test_unknown_plan_raises(self):
        with pytest.raises(KeyError, match="unknown plan"):
            get_plan("qd9")

    def test_axes_are_validated(self):
        with pytest.raises(ValueError, match="unknown storage"):
            ExecutionPlan(key="x", quadrant="QD0", name="x",
                          description="", partition="horizontal",
                          storage="diagonal", index="node-to-instance",
                          aggregation="all-reduce")

    def test_replace_derives_custom_plan(self):
        custom = get_plan("vero").replace(key="custom",
                                          storage="blocked-row",
                                          index="two-phase")
        assert custom.axes()["storage"] == "blocked-row"
        assert get_plan("vero").storage == "row"  # original untouched

    def test_build_returns_executor(self, workload):
        cfg, _, _ = workload
        system = get_plan("qd2").build(cfg, ClusterConfig(num_workers=3))
        assert isinstance(system, PlanExecutor)
        assert system.quadrant == "QD2"

    def test_make_system_accepts_plan_keys(self, workload):
        cfg, _, _ = workload
        system = make_system("qd3-pure", cfg, ClusterConfig(3))
        assert system.plan.key == "qd3-pure"

    def test_ps_plan_rejects_multiclass(self, multiclass_workload):
        cfg, _, _ = multiclass_workload
        with pytest.raises(ValueError, match="multi-classification"):
            get_plan("qd2-ps").build(cfg, ClusterConfig(3))


class TestOracleEquivalence:
    @pytest.mark.parametrize("key", VERTICAL_PLANS)
    def test_vertical_plans_match_oracle(self, key, workload):
        cfg, dataset, binned = workload
        oracle = GBDT(cfg).fit(dataset, binned=binned)
        dist = get_plan(key).build(cfg, ClusterConfig(4)).fit(binned)
        assert ensemble_signature(oracle.ensemble) == \
            ensemble_signature(dist.ensemble)

    @pytest.mark.parametrize("key", ALL_PLANS)
    def test_every_plan_matches_oracle_single_worker(self, key,
                                                     workload):
        cfg, dataset, binned = workload
        oracle = GBDT(cfg).fit(dataset, binned=binned)
        dist = get_plan(key).build(cfg, ClusterConfig(1)).fit(binned)
        assert ensemble_signature(oracle.ensemble) == \
            ensemble_signature(dist.ensemble)


class TestLegacyEquivalence:
    """The frozen pre-refactor classes are the golden reference: same
    trees, same traffic, same memory — the refactor changed the
    architecture and nothing else."""

    @pytest.mark.parametrize("key", ALL_PLANS)
    def test_plan_matches_legacy_bit_for_bit(self, key, workload):
        cfg, _, binned = workload
        legacy_cls, kwargs = LEGACY_SYSTEMS[key]
        legacy = legacy_cls(cfg, ClusterConfig(4), **kwargs).fit(binned)
        plan = get_plan(key).build(cfg, ClusterConfig(4)).fit(binned)
        assert ensemble_signature(legacy.ensemble) == \
            ensemble_signature(plan.ensemble)
        assert legacy.comm.total_bytes == plan.comm.total_bytes
        assert legacy.memory.data_bytes == plan.memory.data_bytes
        assert legacy.memory.histogram_bytes == \
            plan.memory.histogram_bytes

    @pytest.mark.parametrize("key", ALL_PLANS)
    def test_per_kind_traffic_matches_legacy(self, key, workload):
        cfg, _, binned = workload
        legacy_cls, kwargs = LEGACY_SYSTEMS[key]
        legacy = legacy_cls(cfg, ClusterConfig(5), **kwargs).fit(binned)
        plan = get_plan(key).build(cfg, ClusterConfig(5)).fit(binned)
        assert legacy.comm.bytes_by_kind == plan.comm.bytes_by_kind

    def test_multiclass_plans_match_legacy(self, multiclass_workload):
        cfg, _, binned = multiclass_workload
        for key in ("qd1", "qd2", "qd3", "vero"):
            legacy_cls, kwargs = LEGACY_SYSTEMS[key]
            legacy = legacy_cls(cfg, ClusterConfig(3), **kwargs) \
                .fit(binned)
            plan = get_plan(key).build(cfg, ClusterConfig(3)).fit(binned)
            assert ensemble_signature(legacy.ensemble) == \
                ensemble_signature(plan.ensemble), key
            assert legacy.comm.total_bytes == plan.comm.total_bytes, key

    def test_blocked_plan_matches_vero_trees(self, workload):
        """The blockified layout holds the same entries, so qd4-blocked
        must reproduce Vero's trees and traffic exactly."""
        cfg, _, binned = workload
        vero = get_plan("vero").build(cfg, ClusterConfig(4)).fit(binned)
        blocked = get_plan("qd4-blocked").build(cfg, ClusterConfig(4)) \
            .fit(binned)
        assert ensemble_signature(vero.ensemble) == \
            ensemble_signature(blocked.ensemble)
        assert vero.comm.total_bytes == blocked.comm.total_bytes


class TestCommAccounting:
    """Per-plan comm_bytes stays inside the Section 3 cost model, with
    the same tolerances as tests/systems/test_quadrants.py."""

    @pytest.mark.parametrize("key", HORIZONTAL_PLANS)
    def test_horizontal_plans_bounded_by_model(self, key):
        dataset = make_classification(800, 500, density=0.3, seed=5)
        cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8)
        binned = bin_dataset(dataset, cfg.num_candidates)
        result = get_plan(key).build(cfg, ClusterConfig(4)).fit(binned)
        shape = WorkloadShape(800, 500, 4, cfg.num_layers,
                              cfg.num_candidates)
        per_tree = result.comm.total_bytes / 2
        # the Section 3.1.3 model counts Sizehist * W per node — exactly
        # the PS push; a ring all-reduce moves 2(W-1)/W of that, and a
        # reduce-scatter (W-1)/W (always below the model)
        bound = horizontal_comm_bytes_per_tree(shape)
        if key == "qd1":
            bound *= 2 * (4 - 1) / 4
        assert per_tree <= bound * 1.05

    @pytest.mark.parametrize("key", ["qd3", "qd3-pure", "vero",
                                     "qd4-blocked"])
    def test_vertical_plans_bounded_by_model(self, key):
        dataset = make_classification(3000, 100, density=0.3, seed=6)
        cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8)
        binned = bin_dataset(dataset, cfg.num_candidates)
        result = get_plan(key).build(cfg, ClusterConfig(4)).fit(binned)
        shape = WorkloadShape(3000, 100, 4, cfg.num_layers,
                              cfg.num_candidates)
        per_tree = result.comm.total_bytes / 2
        # bitmap traffic plus small split exchanges
        assert per_tree <= vertical_comm_bytes_per_tree(shape) * 1.2

    def test_feature_parallel_moves_only_split_infos(self, workload):
        cfg, _, binned = workload
        result = get_plan("qd2-fp").build(cfg, ClusterConfig(4)) \
            .fit(binned)
        kinds = set(result.comm.bytes_by_kind)
        assert kinds <= {"split-exchange"}


class TestAdvisorPlans:
    def test_recommendation_is_executable(self, workload):
        cfg, _, binned = workload
        shape = WorkloadShape(
            num_instances=binned.num_instances,
            num_features=binned.num_features,
            num_workers=4, num_layers=cfg.num_layers,
            num_candidates=cfg.num_candidates,
        )
        rec = recommend(shape, avg_nnz_per_instance=16.0,
                        network=NetworkModel.laboratory())
        assert rec.plan is PLANS[rec.plan_key]
        system = rec.plan.build(cfg, ClusterConfig(4))
        result = system.fit(binned)
        assert len(result.ensemble.trees) == cfg.num_trees

    def test_every_estimate_names_a_plan(self):
        shape = WorkloadShape(2_000_000, 30_000, 8, 8, 20, 5)
        rec = recommend(shape, avg_nnz_per_instance=100.0)
        for est in rec.ranking:
            assert est.plan_key in PLANS
            assert est.plan.quadrant == est.quadrant


class TestHarnessPlans:
    def test_run_point_accepts_plan_object(self, workload):
        cfg, _, binned = workload
        custom = get_plan("vero").replace(key="custom-blocked",
                                          storage="blocked-row",
                                          index="two-phase")
        point = run_point(custom, binned, cfg, ClusterConfig(3),
                          num_trees=2, label="custom")
        assert point.system == "custom-blocked"
        assert point.comp_seconds > 0

    def test_run_point_accepts_plan_key(self, workload):
        cfg, _, binned = workload
        point = run_point("qd3-pure", binned, cfg, ClusterConfig(3),
                          num_trees=2)
        assert point.system == "qd3-pure"


class TestLateOverrides:
    """Instance-attribute knobs the ablation benchmarks rely on keep
    working after the refactor."""

    def test_grouping_override(self, workload):
        cfg, _, binned = workload
        signatures = []
        for strategy in ("greedy", "round-robin", "hash"):
            system = get_plan("vero").build(cfg, ClusterConfig(3))
            system.grouping = strategy
            signatures.append(
                ensemble_signature(system.fit(binned).ensemble))
        assert signatures[0] == signatures[1] == signatures[2]

    def test_subtraction_toggle_same_trees(self, workload):
        cfg, _, binned = workload
        on = get_plan("qd2").build(cfg, ClusterConfig(3))
        off = get_plan("qd2").build(cfg, ClusterConfig(3))
        off.use_subtraction = False
        assert ensemble_signature(on.fit(binned).ensemble) == \
            ensemble_signature(off.fit(binned).ensemble)
