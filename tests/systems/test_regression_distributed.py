"""Distributed training on the regression objective."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, GBDT, TrainConfig, make_regression, \
    make_system
from repro.data.dataset import bin_dataset


@pytest.fixture(scope="module")
def regression_setting():
    ds = make_regression(1200, 40, density=0.5, noise=0.05, seed=61)
    train, valid = ds.split(0.8, seed=62)
    cfg = TrainConfig(num_trees=5, num_layers=4, num_candidates=12,
                      objective="regression", learning_rate=0.3)
    binned = bin_dataset(train, cfg.num_candidates)
    return train, valid, cfg, binned


class TestDistributedRegression:
    @pytest.mark.parametrize("name", ["qd1", "qd2", "qd3", "qd4"])
    def test_rmse_decreases(self, regression_setting, name):
        train, valid, cfg, binned = regression_setting
        result = make_system(name, cfg, ClusterConfig(3)).fit(
            binned, valid=valid)
        assert result.evals[0].metric_name == "rmse"
        assert result.evals[-1].metric_value < \
            result.evals[0].metric_value

    def test_vertical_matches_oracle(self, regression_setting):
        train, valid, cfg, binned = regression_setting
        oracle = GBDT(cfg).fit(train, valid, binned=binned)
        dist = make_system("vero", cfg, ClusterConfig(4)).fit(
            binned, valid=valid)
        for rec_o, rec_d in zip(oracle.evals, dist.evals):
            assert rec_o.metric_value == pytest.approx(
                rec_d.metric_value, rel=1e-9)

    def test_predictions_match_labels_scale(self, regression_setting):
        train, valid, cfg, binned = regression_setting
        system = make_system("vero", cfg, ClusterConfig(3))
        result = system.fit(binned)
        preds = system.predict(result.ensemble, valid)
        # predictions live on the label scale (no link function)
        assert preds.std() > 0
        corr = np.corrcoef(preds, valid.labels)[0, 1]
        assert corr > 0.5
