"""Closed-form cost model tests, including the exact Section 3.1.4
worked example (the industrial Age dataset)."""

from __future__ import annotations

import pytest

from repro.systems.costmodel import (WorkloadShape,
                                     colstore_node_index_cost,
                                     histogram_construction_cost,
                                     horizontal_comm_bytes_per_tree,
                                     horizontal_histogram_memory_bytes,
                                     node_splitting_cost,
                                     sizehist_bytes, split_finding_cost,
                                     vertical_comm_bytes_per_tree,
                                     vertical_histogram_memory_bytes)

GIB = 1024 ** 3
MIB = 1024 ** 2

#: Section 3.1.4: Age on 8 workers — 48M instances, 330K features,
#: 9 classes, 8 layers, 20 candidate splits.
AGE = WorkloadShape(
    num_instances=48_000_000,
    num_features=330_000,
    num_workers=8,
    num_layers=8,
    num_candidates=20,
    num_classes=9,
)


class TestSection314Example:
    def test_sizehist_is_906_mb(self):
        assert sizehist_bytes(AGE) / MIB == pytest.approx(906.25, rel=1e-3)

    def test_horizontal_memory_is_56_6_gb(self):
        assert horizontal_histogram_memory_bytes(AGE) / GIB == \
            pytest.approx(56.6, rel=1e-2)

    def test_horizontal_comm_is_900_gb(self):
        assert horizontal_comm_bytes_per_tree(AGE) / GIB == \
            pytest.approx(900, rel=1e-2)

    def test_vertical_memory_is_7_08_gb(self):
        assert vertical_histogram_memory_bytes(AGE) / GIB == \
            pytest.approx(7.08, rel=1e-2)

    def test_vertical_comm_is_366_mb(self):
        assert vertical_comm_bytes_per_tree(AGE) / MIB == \
            pytest.approx(366, rel=1e-2)


class TestScalingClaims:
    def test_horizontal_comm_doubles_per_layer(self):
        """Section 3.1.3: horizontal cost grows ~2x per extra layer."""
        base = WorkloadShape(1_000_000, 1000, 8, 8, 20)
        deeper = WorkloadShape(1_000_000, 1000, 8, 9, 20)
        ratio = (horizontal_comm_bytes_per_tree(deeper)
                 / horizontal_comm_bytes_per_tree(base))
        assert ratio == pytest.approx(2.0, rel=0.01)

    def test_vertical_comm_linear_in_layers(self):
        base = WorkloadShape(1_000_000, 1000, 8, 8, 20)
        deeper = WorkloadShape(1_000_000, 1000, 8, 9, 20)
        ratio = (vertical_comm_bytes_per_tree(deeper)
                 / vertical_comm_bytes_per_tree(base))
        assert ratio == pytest.approx(9 / 8)

    def test_vertical_comm_independent_of_dim_and_classes(self):
        a = WorkloadShape(1_000_000, 100, 8, 8, 20, 2)
        b = WorkloadShape(1_000_000, 100_000, 8, 8, 20, 10)
        assert vertical_comm_bytes_per_tree(a) == \
            vertical_comm_bytes_per_tree(b)

    def test_horizontal_comm_linear_in_classes(self):
        a = WorkloadShape(1_000_000, 1000, 8, 8, 20, 3)
        b = WorkloadShape(1_000_000, 1000, 8, 8, 20, 9)
        assert horizontal_comm_bytes_per_tree(b) == \
            3 * horizontal_comm_bytes_per_tree(a)

    def test_memory_ratio_is_w(self):
        shape = WorkloadShape(1000, 100, 8, 6, 16)
        assert horizontal_histogram_memory_bytes(shape) / \
            vertical_histogram_memory_bytes(shape) == pytest.approx(8.0)

    def test_crossover_low_dim_favours_horizontal(self):
        """For tiny D and huge N, horizontal traffic is below vertical's
        (the Figure 10(a) regime); for huge D it flips (Figure 10(b))."""
        low_d = WorkloadShape(50_000_000, 100, 8, 8, 20)
        assert horizontal_comm_bytes_per_tree(low_d) < \
            vertical_comm_bytes_per_tree(low_d)
        high_d = WorkloadShape(50_000_000, 100_000, 8, 8, 20)
        assert horizontal_comm_bytes_per_tree(high_d) > \
            vertical_comm_bytes_per_tree(high_d)


class TestComputationModel:
    def test_histogram_cost_shares_work(self):
        shape = WorkloadShape(10_000, 100, 4, 6, 16)
        assert histogram_construction_cost(shape, 20.0) == \
            10_000 * 20 / 4

    def test_colstore_node_index_pays_log_factor(self):
        shape = WorkloadShape(1_000_000, 100, 4, 6, 16)
        base = histogram_construction_cost(shape, 50.0)
        assert colstore_node_index_cost(shape, 50.0) > base

    def test_split_finding_cheap(self):
        shape = WorkloadShape(1_000_000, 1000, 8, 8, 20)
        assert split_finding_cost(shape) < \
            histogram_construction_cost(shape, 10.0)

    def test_node_splitting_vertical_w_times_higher(self):
        shape = WorkloadShape(1_000_000, 1000, 8, 8, 20)
        assert node_splitting_cost(shape, vertical=True) == \
            8 * node_splitting_cost(shape, vertical=False)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            WorkloadShape(0, 1, 1, 1, 1)
