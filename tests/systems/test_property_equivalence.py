"""Property-based equivalence: for arbitrary small workloads and cluster
sizes, the vertical quadrants reproduce the oracle's trees exactly."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, GBDT, TrainConfig, make_classification, \
    make_system
from repro.data.dataset import bin_dataset


def tree_signature(tree):
    """Hashable structural summary of a tree."""
    parts = []
    for nid in sorted(tree.nodes):
        node = tree.nodes[nid]
        if node.is_leaf:
            parts.append((nid, "leaf", tuple(np.round(node.weight, 10))))
        else:
            parts.append((nid, node.split.feature, node.split.bin,
                          node.split.default_left))
    return tuple(parts)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_workers=st.integers(1, 6),
    num_layers=st.integers(2, 5),
    num_classes=st.sampled_from([2, 3]),
    density=st.floats(0.1, 0.9),
    system=st.sampled_from(["qd3", "qd3-pure", "qd4", "qd4-blocked",
                            "lightgbm-fp"]),
)
def test_property_vertical_equals_oracle(seed, num_workers, num_layers,
                                         num_classes, density, system):
    rng = np.random.default_rng(seed)
    dataset = make_classification(
        int(rng.integers(60, 300)), int(rng.integers(5, 40)),
        num_classes=num_classes, density=density, seed=seed,
    )
    cfg = TrainConfig(
        num_trees=2, num_layers=num_layers, num_candidates=6,
        objective="multiclass" if num_classes > 2 else "binary",
        num_classes=num_classes,
    )
    binned = bin_dataset(dataset, cfg.num_candidates)
    oracle = GBDT(cfg).fit(dataset, binned=binned)
    dist = make_system(system, cfg, ClusterConfig(num_workers)).fit(
        binned)
    for t_oracle, t_dist in zip(oracle.ensemble.trees,
                                dist.ensemble.trees):
        assert tree_signature(t_oracle) == tree_signature(t_dist)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_workers=st.integers(2, 5),
    system=st.sampled_from(["qd1", "qd2"]),
)
def test_property_horizontal_quality_close(seed, num_workers, system):
    """Horizontal quadrants may drift on float ties but must match the
    oracle's training quality on arbitrary workloads."""
    dataset = make_classification(400, 20, density=0.5, seed=seed)
    train, valid = dataset.split(0.8, seed=seed + 1)
    cfg = TrainConfig(num_trees=3, num_layers=4, num_candidates=8)
    binned = bin_dataset(train, cfg.num_candidates)
    oracle = GBDT(cfg).fit(train, valid, binned=binned)
    dist = make_system(system, cfg, ClusterConfig(num_workers)).fit(
        binned, valid=valid)
    assert abs(oracle.evals[-1].metric_value
               - dist.evals[-1].metric_value) < 0.05
