"""Heterogeneous-worker (straggler) simulation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, make_classification, \
    make_system
from repro.data.dataset import bin_dataset
from repro.systems.base import WorkerClock


class TestWorkerClock:
    def test_speed_scales_charge(self):
        clock = WorkerClock(2, speeds=(1.0, 0.5))
        clock.charge(0, 1.0)
        clock.charge(1, 1.0)
        assert clock.seconds[0] == 1.0
        assert clock.seconds[1] == 2.0
        assert clock.elapsed == 2.0

    def test_charge_all_scaled(self):
        clock = WorkerClock(3, speeds=(1.0, 2.0, 0.25))
        clock.charge_all(1.0)
        np.testing.assert_allclose(clock.seconds, [1.0, 0.5, 4.0])


class TestClusterConfig:
    def test_speed_validation(self):
        with pytest.raises(ValueError, match="entries"):
            ClusterConfig(num_workers=3, worker_speeds=(1.0, 1.0))
        with pytest.raises(ValueError, match="> 0"):
            ClusterConfig(num_workers=2, worker_speeds=(1.0, 0.0))

    def test_speed_of(self):
        cluster = ClusterConfig(num_workers=2, worker_speeds=(1.0, 0.5))
        assert cluster.speed_of(1) == 0.5
        assert ClusterConfig(num_workers=2).speed_of(1) == 1.0


#: one representative plan per partitioning/storage/aggregation corner
STRAGGLER_PLANS = ("qd1", "qd2", "qd2-ps", "qd3", "vero", "qd4-blocked")


def _split_signature(tree):
    return tuple(
        (nid, tree.nodes[nid].split.feature, tree.nodes[nid].split.bin)
        for nid in sorted(tree.nodes)
        if not tree.nodes[nid].is_leaf
    )


class TestStragglerEffect:
    """Heterogeneous workers across every plan family.

    A straggler only stretches the max-over-workers computation clock —
    the model and the traffic ledger are deterministic functions of the
    data and the plan, so both must be unchanged, and the slowdown must
    grow with the straggler's severity.
    """

    @pytest.fixture(scope="class")
    def binned(self):
        ds = make_classification(3000, 200, density=0.2, seed=51)
        binned = bin_dataset(ds, 12)
        # warm numpy/allocator caches so the first measured run is not
        # inflated relative to later ones (comp clocks are wall-clock)
        self._fit("qd1", binned)
        return binned

    @staticmethod
    def _fit(plan_key, binned, speeds=None):
        cfg = TrainConfig(num_trees=2, num_layers=5, num_candidates=10)
        if speeds is None:
            cluster = ClusterConfig(num_workers=4)
        else:
            cluster = ClusterConfig(num_workers=4, worker_speeds=speeds)
        return make_system(plan_key, cfg, cluster).fit(binned)

    @pytest.mark.parametrize("plan_key", STRAGGLER_PLANS)
    def test_slowdown_scales_with_severity(self, binned, plan_key):
        uniform = self._fit(plan_key, binned)
        mild = self._fit(plan_key, binned, (1.0, 1.0, 1.0, 0.25))
        severe = self._fit(plan_key, binned, (1.0, 1.0, 1.0, 0.0625))
        # a 4x/16x-slower worker stretches the per-layer barrier by its
        # share of compute; assert direction and monotonicity with
        # margins tolerant of wall-clock noise under load
        assert mild.mean_comp_seconds() > \
            1.2 * uniform.mean_comp_seconds()
        assert severe.mean_comp_seconds() > \
            1.5 * mild.mean_comp_seconds()

    @pytest.mark.parametrize("plan_key", STRAGGLER_PLANS)
    def test_straggler_does_not_change_traffic_or_model(self, binned,
                                                        plan_key):
        uniform = self._fit(plan_key, binned)
        skewed = self._fit(plan_key, binned, (0.25, 1.0, 1.0, 1.0))
        # the traffic ledger is byte-identical, kind by kind
        assert skewed.comm.bytes_by_kind == uniform.comm.bytes_by_kind
        assert skewed.comm.total_bytes == uniform.comm.total_bytes
        # the model itself is unaffected
        assert len(skewed.ensemble.trees) == len(uniform.ensemble.trees)
        for fast_tree, slow_tree in zip(uniform.ensemble.trees,
                                        skewed.ensemble.trees):
            assert _split_signature(fast_tree) == \
                _split_signature(slow_tree)
