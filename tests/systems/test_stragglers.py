"""Heterogeneous-worker (straggler) simulation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, make_classification, \
    make_system
from repro.data.dataset import bin_dataset
from repro.systems.base import WorkerClock


class TestWorkerClock:
    def test_speed_scales_charge(self):
        clock = WorkerClock(2, speeds=(1.0, 0.5))
        clock.charge(0, 1.0)
        clock.charge(1, 1.0)
        assert clock.seconds[0] == 1.0
        assert clock.seconds[1] == 2.0
        assert clock.elapsed == 2.0

    def test_charge_all_scaled(self):
        clock = WorkerClock(3, speeds=(1.0, 2.0, 0.25))
        clock.charge_all(1.0)
        np.testing.assert_allclose(clock.seconds, [1.0, 0.5, 4.0])


class TestClusterConfig:
    def test_speed_validation(self):
        with pytest.raises(ValueError, match="entries"):
            ClusterConfig(num_workers=3, worker_speeds=(1.0, 1.0))
        with pytest.raises(ValueError, match="> 0"):
            ClusterConfig(num_workers=2, worker_speeds=(1.0, 0.0))

    def test_speed_of(self):
        cluster = ClusterConfig(num_workers=2, worker_speeds=(1.0, 0.5))
        assert cluster.speed_of(1) == 0.5
        assert ClusterConfig(num_workers=2).speed_of(1) == 1.0


class TestStragglerEffect:
    @pytest.fixture(scope="class")
    def binned(self):
        ds = make_classification(3000, 200, density=0.2, seed=51)
        return bin_dataset(ds, 12)

    def test_straggler_slows_training(self, binned):
        cfg = TrainConfig(num_trees=2, num_layers=5, num_candidates=12)
        uniform = ClusterConfig(num_workers=4)
        skewed = ClusterConfig(num_workers=4,
                               worker_speeds=(1.0, 1.0, 1.0, 0.25))
        fast = make_system("qd4", cfg, uniform).fit(binned)
        slow = make_system("qd4", cfg, skewed).fit(binned)
        # a 4x-slower worker should roughly double-to-quadruple the
        # max-over-workers computation; assert direction with a margin
        # tolerant of wall-clock noise under load
        assert slow.mean_comp_seconds() > 1.2 * fast.mean_comp_seconds()
        # the model itself is unaffected
        assert slow.ensemble.trees[0].num_splits == \
            fast.ensemble.trees[0].num_splits

    def test_straggler_does_not_change_traffic(self, binned):
        cfg = TrainConfig(num_trees=2, num_layers=5, num_candidates=12)
        uniform = ClusterConfig(num_workers=4)
        skewed = ClusterConfig(num_workers=4,
                               worker_speeds=(0.5, 1.0, 1.0, 1.0))
        fast = make_system("qd2", cfg, uniform).fit(binned)
        slow = make_system("qd2", cfg, skewed).fit(binned)
        assert slow.comm.total_bytes == fast.comm.total_bytes
