"""Quadrant integration tests: model equivalence with the single-process
oracle, and conformance of the simulated costs with the Section 3 model.

Equivalence contract:

* Vertical quadrants (QD3, QD4, feature-parallel) build each feature's
  histogram with exactly the oracle's arithmetic, so their trees are
  **bit-identical** to the oracle's.
* Horizontal quadrants aggregate per-worker partial histograms, so sums
  associate differently; when two candidate splits tie to the last ulp the
  argmax may differ.  They are validated for near-identical quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, GBDT, TrainConfig, make_system
from repro.core.metrics import auc
from repro.data.dataset import bin_dataset
from repro.systems.costmodel import (WorkloadShape,
                                     horizontal_comm_bytes_per_tree,
                                     sizehist_bytes,
                                     vertical_comm_bytes_per_tree)

ALL_SYSTEMS = ["qd1", "qd2", "dimboost", "qd3", "qd4", "lightgbm-fp"]
VERTICAL_SYSTEMS = ["qd3", "qd4", "lightgbm-fp"]


def trees_equal(a, b) -> bool:
    if set(a.nodes) != set(b.nodes):
        return False
    for nid, node_a in a.nodes.items():
        node_b = b.nodes[nid]
        if node_a.is_leaf != node_b.is_leaf:
            return False
        if node_a.is_leaf:
            if not np.allclose(node_a.weight, node_b.weight, rtol=1e-9):
                return False
        else:
            sa, sb = node_a.split, node_b.split
            if (sa.feature, sa.bin, sa.default_left) != \
                    (sb.feature, sb.bin, sb.default_left):
                return False
    return True


@pytest.fixture(scope="module")
def setting(request):
    from repro import make_classification

    ds = make_classification(1500, 60, density=0.3, seed=31)
    train, valid = ds.split(0.8, seed=32)
    cfg = TrainConfig(num_trees=4, num_layers=5, num_candidates=12)
    binned = bin_dataset(train, cfg.num_candidates)
    oracle = GBDT(cfg).fit(train, valid, binned=binned)
    return train, valid, cfg, binned, oracle


class TestOracleEquivalence:
    @pytest.mark.parametrize("name", VERTICAL_SYSTEMS)
    def test_vertical_bit_identical(self, setting, name):
        train, valid, cfg, binned, oracle = setting
        system = make_system(name, cfg, ClusterConfig(num_workers=4))
        result = system.fit(binned, valid=valid)
        assert len(result.ensemble) == len(oracle.ensemble)
        for t_oracle, t_dist in zip(oracle.ensemble.trees,
                                    result.ensemble.trees):
            assert trees_equal(t_oracle, t_dist)

    @pytest.mark.parametrize("name", ["qd1", "qd2", "dimboost"])
    def test_horizontal_quality_matches(self, setting, name):
        train, valid, cfg, binned, oracle = setting
        system = make_system(name, cfg, ClusterConfig(num_workers=4))
        result = system.fit(binned, valid=valid)
        for rec_o, rec_d in zip(oracle.evals, result.evals):
            assert abs(rec_o.metric_value - rec_d.metric_value) < 0.02

    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_single_worker_equals_oracle(self, setting, name):
        """With W=1 every quadrant degenerates to the oracle exactly."""
        train, valid, cfg, binned, oracle = setting
        system = make_system(name, cfg, ClusterConfig(num_workers=1))
        result = system.fit(binned)
        for t_oracle, t_dist in zip(oracle.ensemble.trees,
                                    result.ensemble.trees):
            assert trees_equal(t_oracle, t_dist)

    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_worker_count_does_not_change_quality(self, setting, name):
        train, valid, cfg, binned, _ = setting
        r2 = make_system(name, cfg, ClusterConfig(num_workers=2)).fit(
            binned, valid=valid)
        r5 = make_system(name, cfg, ClusterConfig(num_workers=5)).fit(
            binned, valid=valid)
        assert abs(r2.evals[-1].metric_value
                   - r5.evals[-1].metric_value) < 0.02


class TestPredictions:
    @pytest.mark.parametrize("name", ["qd2", "qd4"])
    def test_predict_probabilities(self, setting, name):
        train, valid, cfg, binned, _ = setting
        system = make_system(name, cfg, ClusterConfig(num_workers=3))
        result = system.fit(binned)
        preds = system.predict(result.ensemble, valid)
        assert preds.shape == (valid.num_instances,)
        assert np.all((preds > 0) & (preds < 1))
        assert auc(valid.labels, preds) > 0.75


class TestMulticlass:
    def test_all_quadrants_handle_multiclass(self, small_multiclass):
        cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8,
                          objective="multiclass", num_classes=4)
        binned = bin_dataset(small_multiclass, cfg.num_candidates)
        results = {}
        for name in ("qd1", "qd2", "qd3", "qd4"):
            system = make_system(name, cfg, ClusterConfig(num_workers=3))
            results[name] = system.fit(binned,
                                       valid=small_multiclass)
        finals = [r.evals[-1].metric_value for r in results.values()]
        assert max(finals) - min(finals) < 0.05

    def test_dimboost_rejects_multiclass(self):
        cfg = TrainConfig(num_trees=1, objective="multiclass",
                          num_classes=3)
        with pytest.raises(ValueError, match="multi-classification"):
            make_system("dimboost", cfg, ClusterConfig(num_workers=2))


class TestCommunicationShape:
    """The Section 3.1.3 claims, validated against the simulator."""

    def make_run(self, name, num_instances, num_features, num_workers=4,
                 num_layers=5, num_classes=2):
        from repro import make_classification

        task_classes = num_classes if num_classes > 2 else 2
        ds = make_classification(
            num_instances, num_features, num_classes=task_classes,
            density=min(0.3, 4000 / num_features / 10 + 0.02), seed=33,
        )
        objective = "multiclass" if task_classes > 2 else "binary"
        cfg = TrainConfig(num_trees=2, num_layers=num_layers,
                          num_candidates=8, objective=objective,
                          num_classes=task_classes)
        binned = bin_dataset(ds, cfg.num_candidates)
        system = make_system(name, cfg, ClusterConfig(num_workers))
        return system.fit(binned), cfg

    def test_horizontal_comm_bounded_by_model(self):
        result, cfg = self.make_run("qd2", 800, 500)
        shape = WorkloadShape(800, 500, 4, cfg.num_layers,
                              cfg.num_candidates)
        per_tree = result.comm.total_bytes / 2
        assert per_tree <= horizontal_comm_bytes_per_tree(shape) * 1.05

    def test_vertical_comm_bounded_by_model(self):
        result, cfg = self.make_run("qd4", 3000, 100)
        shape = WorkloadShape(3000, 100, 4, cfg.num_layers,
                              cfg.num_candidates)
        per_tree = result.comm.total_bytes / 2
        # bitmap traffic plus small split exchanges
        assert per_tree <= vertical_comm_bytes_per_tree(shape) * 1.2

    def test_vertical_wins_on_high_dim(self):
        h, _ = self.make_run("qd2", 600, 3000)
        v, _ = self.make_run("qd4", 600, 3000)
        assert v.comm.total_bytes < h.comm.total_bytes / 50

    def test_horizontal_wins_on_low_dim(self):
        # Below the Section 3.1.3 crossover N/8*W*L > Sizehist*W*(2^(L-1)-1)
        # horizontal traffic is smaller; N=100k, D=20, q=8, L=4 sits
        # clearly on the horizontal side.
        h, _ = self.make_run("qd2", 100_000, 20, num_layers=4)
        v, _ = self.make_run("qd4", 100_000, 20, num_layers=4)
        assert h.comm.total_bytes < v.comm.total_bytes

    def test_horizontal_comm_grows_with_classes(self):
        b2, _ = self.make_run("qd2", 800, 400, num_classes=2)
        b6, _ = self.make_run("qd2", 800, 400, num_classes=6)
        assert b6.comm.total_bytes > 2.5 * b2.comm.total_bytes

    def test_vertical_comm_flat_in_classes(self):
        b2, _ = self.make_run("qd4", 800, 400, num_classes=2)
        b6, _ = self.make_run("qd4", 800, 400, num_classes=6)
        assert b6.comm.total_bytes < 1.5 * b2.comm.total_bytes

    def test_feature_parallel_avoids_placement_traffic(self):
        fp, _ = self.make_run("lightgbm-fp", 3000, 200)
        vero, _ = self.make_run("qd4", 3000, 200)
        assert fp.comm.total_bytes < vero.comm.total_bytes


class TestMemoryShape:
    """Figure 10(e)/(f): vertical histogram memory ~ horizontal / W."""

    def test_histogram_memory_ratio(self, setting):
        train, valid, cfg, binned, _ = setting
        cluster = ClusterConfig(num_workers=4)
        h = make_system("qd2", cfg, cluster).fit(binned)
        v = make_system("qd4", cfg, cluster).fit(binned)
        ratio = h.memory.histogram_bytes / v.memory.histogram_bytes
        assert 2.5 <= ratio <= 6.0  # ~W with grouping slack

    def test_vertical_data_slightly_larger(self, setting):
        """QD4 stores all labels; QD2 stores a label shard."""
        train, valid, cfg, binned, _ = setting
        cluster = ClusterConfig(num_workers=4)
        h = make_system("qd2", cfg, cluster).fit(binned)
        v = make_system("qd4", cfg, cluster).fit(binned)
        assert v.memory.data_bytes > 0 and h.memory.data_bytes > 0
        # per-worker data shards are ~ total/W in both cases
        total = binned.binned.nbytes
        assert h.memory.data_bytes < total
        assert v.memory.data_bytes < total

    def test_feature_parallel_stores_full_copy(self, setting):
        train, valid, cfg, binned, _ = setting
        cluster = ClusterConfig(num_workers=4)
        fp = make_system("lightgbm-fp", cfg, cluster).fit(binned)
        v = make_system("qd4", cfg, cluster).fit(binned)
        assert fp.memory.data_bytes > 2.5 * v.memory.data_bytes

    def test_sizehist_matches_formula(self, setting):
        """QD1 peak = active nodes x Sizehist at the widest layer."""
        train, valid, cfg, binned, _ = setting
        cluster = ClusterConfig(num_workers=2)
        result = make_system("qd1", cfg, cluster).fit(binned)
        shape = WorkloadShape(binned.num_instances, binned.num_features,
                              2, cfg.num_layers, cfg.num_candidates)
        per_node = sizehist_bytes(shape)
        max_layer_nodes = 2 ** (cfg.num_layers - 2)
        assert result.memory.histogram_bytes <= \
            per_node * max_layer_nodes


class TestTimingReports:
    def test_reports_per_tree(self, setting):
        train, valid, cfg, binned, _ = setting
        result = make_system("qd4", cfg,
                             ClusterConfig(num_workers=3)).fit(binned)
        assert len(result.tree_reports) == cfg.num_trees
        for report in result.tree_reports:
            assert report.comp_seconds > 0
            assert report.comm_seconds > 0
            assert report.total_seconds == pytest.approx(
                report.comp_seconds + report.comm_seconds
            )

    def test_eval_time_axis_monotonic(self, setting):
        train, valid, cfg, binned, _ = setting
        result = make_system("qd2", cfg,
                             ClusterConfig(num_workers=3)).fit(
            binned, valid=valid)
        times = [e.elapsed_seconds for e in result.evals]
        assert times == sorted(times)
        assert times[0] > 0


class TestFactory:
    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            make_system("catboost", TrainConfig(), ClusterConfig())

    def test_case_insensitive(self):
        system = make_system("VERO", TrainConfig(), ClusterConfig())
        assert system.name == "vero"

    def test_qd3_index_modes(self):
        for mode in ("hybrid", "columnwise"):
            system = make_system("qd3", TrainConfig(), ClusterConfig(),
                                 index_mode=mode)
            assert system.index_mode == mode
        with pytest.raises(ValueError):
            make_system("qd3", TrainConfig(), ClusterConfig(),
                        index_mode="magic")
