"""The folded alias modules: one home in ``plans``, shims elsewhere."""

from __future__ import annotations

import importlib
import sys

import pytest

from repro import ClusterConfig, TrainConfig
from repro.systems import (DimBoostStyle, LightGBMFeatureParallel,
                           LightGBMStyle, Vero, XGBoostStyle,
                           YggdrasilStyle)
from repro.systems import plans as plans_module

SHIMS = {
    "repro.systems.qd1": ("XGBoostStyle",),
    "repro.systems.qd2": ("LightGBMStyle", "DimBoostStyle"),
    "repro.systems.qd3": ("YggdrasilStyle",),
    "repro.systems.vero": ("Vero",),
    "repro.systems.feature_parallel": ("LightGBMFeatureParallel",),
}

CONFIG = TrainConfig(num_trees=1, num_layers=3, num_candidates=4)
CLUSTER = ClusterConfig(num_workers=2)


@pytest.mark.parametrize("module_name,class_names",
                         sorted(SHIMS.items()))
def test_shim_warns_and_reexports(module_name, class_names):
    sys.modules.pop(module_name, None)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        module = importlib.import_module(module_name)
    for name in class_names:
        # the shim re-exports the canonical class object, not a copy
        assert getattr(module, name) is getattr(plans_module, name)
    assert sorted(module.__all__) == sorted(class_names)


@pytest.mark.parametrize("cls,plan_key", [
    (XGBoostStyle, "qd1"),
    (LightGBMStyle, "qd2"),
    (DimBoostStyle, "qd2-ps"),
    (Vero, "vero"),
    (LightGBMFeatureParallel, "qd2-fp"),
])
def test_alias_builds_its_registry_plan(cls, plan_key):
    system = cls(CONFIG, CLUSTER)
    assert system.plan.key == plan_key


def test_yggdrasil_index_mode_selects_the_plan():
    assert YggdrasilStyle(CONFIG, CLUSTER).plan.key == "qd3"
    hybrid = YggdrasilStyle(CONFIG, CLUSTER, index_mode="hybrid")
    assert hybrid.index_mode == "hybrid"
    pure = YggdrasilStyle(CONFIG, CLUSTER, index_mode="columnwise")
    assert pure.plan.key == "qd3-pure"
    assert pure.index_mode == "columnwise"
    with pytest.raises(ValueError, match="index_mode"):
        YggdrasilStyle(CONFIG, CLUSTER, index_mode="bogus")
