"""Storage-pattern behaviour tests (Section 3.2 / 5.2.2): QD3 vs QD4
computation characteristics and the columnwise-index cost."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, make_classification, \
    make_system
from repro.data.dataset import bin_dataset


@pytest.fixture(scope="module")
def storage_setting():
    ds = make_classification(2500, 150, density=0.2, seed=41)
    cfg = TrainConfig(num_trees=3, num_layers=5, num_candidates=8)
    binned = bin_dataset(ds, cfg.num_candidates)
    return ds, cfg, binned


class TestQD3Modes:
    def test_hybrid_and_columnwise_same_trees(self, storage_setting):
        _, cfg, binned = storage_setting
        cluster = ClusterConfig(num_workers=3)
        hybrid = make_system("qd3", cfg, cluster,
                             index_mode="hybrid").fit(binned)
        colwise = make_system("qd3", cfg, cluster,
                              index_mode="columnwise").fit(binned)
        for t_h, t_c in zip(hybrid.ensemble.trees,
                            colwise.ensemble.trees):
            assert set(t_h.nodes) == set(t_c.nodes)
            for nid in t_h.nodes:
                a, b = t_h.nodes[nid], t_c.nodes[nid]
                if not a.is_leaf:
                    assert (a.split.feature, a.split.bin) == \
                        (b.split.feature, b.split.bin)

    def test_same_comm_as_vero(self, storage_setting):
        """QD3 and QD4 share vertical partitioning, so their traffic is
        identical (Section 5.2.2: storage affects computation only)."""
        _, cfg, binned = storage_setting
        cluster = ClusterConfig(num_workers=3)
        qd3 = make_system("qd3", cfg, cluster).fit(binned)
        qd4 = make_system("qd4", cfg, cluster).fit(binned)
        assert qd3.comm.total_bytes == qd4.comm.total_bytes

    def test_columnwise_pays_index_maintenance(self, storage_setting):
        """Pure Yggdrasil reorders every column at each layer: strictly
        more computation than the hybrid (Appendix C)."""
        _, cfg, binned = storage_setting
        cluster = ClusterConfig(num_workers=3)
        hybrid = make_system("qd3", cfg, cluster, index_mode="hybrid")
        colwise = make_system("qd3", cfg, cluster,
                              index_mode="columnwise")
        r_h = hybrid.fit(binned)
        r_c = colwise.fit(binned)
        assert r_c.mean_comp_seconds() > r_h.mean_comp_seconds()


class TestSubtractionEffect:
    def test_rowstore_scans_fewer_entries_than_colstore_layer(self):
        """QD1's layer pass touches every stored entry per layer; QD2/QD4
        with subtraction touch roughly half below the root layer."""
        ds = make_classification(3000, 50, density=0.5, seed=42)
        cfg = TrainConfig(num_trees=1, num_layers=5, num_candidates=8)
        binned = bin_dataset(ds, cfg.num_candidates)
        cluster = ClusterConfig(num_workers=2)
        qd1 = make_system("qd1", cfg, cluster).fit(binned)
        qd2 = make_system("qd2", cfg, cluster).fit(binned)
        # Identical histograms, less work: the row quadrant never costs
        # meaningfully more compute (wall-clock comparison, so the margin
        # is generous to absorb scheduler noise; the precise entry-count
        # claims are covered by the kernel tests).
        assert qd2.mean_comp_seconds() < qd1.mean_comp_seconds() * 3.0


class TestGroupingAblation:
    def test_strategies_give_equivalent_models(self, storage_setting):
        _, cfg, binned = storage_setting
        cluster = ClusterConfig(num_workers=3)
        finals = []
        for strategy in ("greedy", "round-robin", "hash"):
            system = make_system("qd4", cfg, cluster)
            system.grouping = strategy
            result = system.fit(binned)
            finals.append(result.ensemble.trees[0].num_splits)
        assert len(set(finals)) == 1

    def test_greedy_no_worse_balanced_than_hash(self, storage_setting):
        ds, cfg, binned = storage_setting
        cluster = ClusterConfig(num_workers=4)
        loads = {}
        for strategy in ("greedy", "hash"):
            system = make_system("qd4", cfg, cluster)
            system.grouping = strategy
            system._binned = binned
            system._setup(binned)
            shard_loads = np.array(
                [s.binned.nnz for s in system.shards], dtype=np.float64
            )
            loads[strategy] = shard_loads.max() / shard_loads.mean()
        assert loads["greedy"] <= loads["hash"] + 1e-9
