"""Chaos/conformance harness for the fault-injection subsystem.

The contract under test (DESIGN.md §9): for *any* recoverable seeded
fault schedule, on *every* plan in the registry,

1. the final model is bit-identical to the fault-free run,
2. the traffic ledger's unprefixed kinds equal the fault-free ledger
   exactly, and the byte delta is exactly the dedicated ``retry:*`` /
   ``recovery:*`` kinds,
3. simulated communication time is monotonically >= the fault-free
   baseline, and
4. the same schedule replays bit-for-bit.

Three pinned seeds make the CI ``chaos`` job reproducible; the
hypothesis harness then samples arbitrary schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, TrainConfig, make_classification, \
    make_system
from repro.core.kernels import available_backends
from repro.cluster.faults import (FaultInjector, FaultPlan,
                                  UnrecoverableFaultError)
from repro.data.dataset import bin_dataset
from repro.systems.executor import TreeCheckpoint
from repro.systems.plans import get_plan, plan_keys
from repro.systems.strategies import AGGREGATIONS

#: the CI chaos job's pinned fault seeds
PINNED_SEEDS = (101, 202, 303)

FAULT_PREFIXES = ("retry:", "recovery:")


def tree_signature(tree):
    parts = []
    for nid in sorted(tree.nodes):
        node = tree.nodes[nid]
        if node.is_leaf:
            parts.append((nid, "leaf", tuple(np.round(node.weight, 12))))
        else:
            parts.append((nid, node.split.feature, node.split.bin,
                          node.split.default_left))
    return tuple(parts)


def split_kinds(stats):
    """(base kinds, fault kinds) of a CommStats bytes ledger."""
    base = {k: v for k, v in stats.bytes_by_kind.items()
            if not k.startswith(FAULT_PREFIXES)}
    fault = {k: v for k, v in stats.bytes_by_kind.items()
             if k.startswith(FAULT_PREFIXES)}
    return base, fault


@pytest.fixture(scope="module")
def binned():
    dataset = make_classification(400, 20, density=0.4, seed=7)
    return bin_dataset(dataset, 8)


def run_pair(plan_key, binned, faults, num_workers=4, num_trees=3,
             num_layers=4, codec=""):
    """(fault-free result, faulty result, faulty system)."""
    base_cfg = TrainConfig(num_trees=num_trees, num_layers=num_layers,
                           num_candidates=8, codec=codec)
    fault_cfg = TrainConfig(num_trees=num_trees, num_layers=num_layers,
                            num_candidates=8, faults=faults, codec=codec)
    cluster = ClusterConfig(num_workers=num_workers)
    clean = make_system(plan_key, base_cfg, cluster).fit(binned)
    system = make_system(plan_key, fault_cfg, cluster)
    faulty = system.fit(binned)
    return clean, faulty, system


class TestChaosConformance:
    """Pinned-seed conformance: every plan x every CI fault seed."""

    @pytest.mark.parametrize("plan_key", plan_keys())
    @pytest.mark.parametrize("fault_seed", PINNED_SEEDS)
    def test_recoverable_schedule_is_exact(self, binned, plan_key,
                                           fault_seed):
        faults = f"{fault_seed}:crash=2,drop=0.08,timeout=0.03"
        clean, faulty, system = run_pair(plan_key, binned, faults)

        # 1. bit-identical model
        assert len(clean.ensemble.trees) == len(faulty.ensemble.trees)
        for t_clean, t_faulty in zip(clean.ensemble.trees,
                                     faulty.ensemble.trees):
            assert tree_signature(t_clean) == tree_signature(t_faulty)

        # 2. exact traffic accounting: base kinds unchanged, delta is
        #    exactly the dedicated retry/recovery kinds
        base_kinds, fault_kinds = split_kinds(faulty.comm)
        assert base_kinds == clean.comm.bytes_by_kind
        assert faulty.comm.total_bytes - clean.comm.total_bytes == \
            sum(fault_kinds.values())
        clean_seconds = clean.comm.seconds_by_kind
        for kind, seconds in faulty.comm.seconds_by_kind.items():
            if not kind.startswith(FAULT_PREFIXES):
                assert seconds == pytest.approx(clean_seconds[kind],
                                                rel=1e-12)

        # 3. faults only ever cost simulated time
        assert faulty.comm.total_seconds >= clean.comm.total_seconds

        # every fired crash produced exactly one recovery record
        counters = system.injector.counters
        assert len(system.recovery_log) == counters.crashes
        expected_policy = AGGREGATIONS[
            get_plan(plan_key).aggregation].recovery_policy
        assert all(rec.policy == expected_policy
                   for rec in system.recovery_log)
        # the retry ledger matches the injected transport faults
        retries = sum(
            1 for rec in faulty.comm.bytes_by_kind
            if rec.startswith("retry:")
        )
        if counters.transport_events == 0:
            assert retries == 0

    @pytest.mark.parametrize("plan_key", ["qd2", "vero"])
    def test_schedule_replays_bit_identical(self, binned, plan_key):
        faults = "11:crash=1,drop=0.1"
        _, first, _ = run_pair(plan_key, binned, faults)
        _, second, _ = run_pair(plan_key, binned, faults)
        assert first.comm.bytes_by_kind == second.comm.bytes_by_kind
        assert first.comm.total_seconds == second.comm.total_seconds
        for t1, t2 in zip(first.ensemble.trees, second.ensemble.trees):
            assert tree_signature(t1) == tree_signature(t2)


class TestChaosWithCodec:
    """Faults compose with the sparse wire codec (DESIGN.md §11): the
    model stays bit-identical to the *dense fault-free* baseline, the
    fault accounting contract holds on the (smaller) encoded ledger, and
    the ``codec:`` savings dimension is exactly raw minus wire."""

    @pytest.mark.parametrize("plan_key", plan_keys())
    def test_sparse_codec_under_faults_all_plans(self, binned, plan_key):
        faults = f"{PINNED_SEEDS[0]}:crash=1,drop=0.08"
        cluster = ClusterConfig(num_workers=4)
        kwargs = dict(num_trees=3, num_layers=4, num_candidates=8)
        dense = make_system(plan_key, TrainConfig(**kwargs),
                            cluster).fit(binned)
        clean, faulty, system = run_pair(plan_key, binned, faults,
                                         codec="sparse")

        # 1. lossless codec + faults still bit-identical to the dense
        #    fault-free baseline
        assert len(dense.ensemble.trees) == len(faulty.ensemble.trees)
        for t_dense, t_faulty in zip(dense.ensemble.trees,
                                     faulty.ensemble.trees):
            assert tree_signature(t_dense) == tree_signature(t_faulty)

        # 2. the §9 contract holds on the encoded ledger: base wire
        #    kinds equal the codec fault-free run, delta is exactly the
        #    retry:/recovery: kinds
        base_kinds, fault_kinds = split_kinds(faulty.comm)
        assert base_kinds == clean.comm.bytes_by_kind
        assert faulty.comm.total_bytes - clean.comm.total_bytes == \
            sum(fault_kinds.values())
        assert faulty.comm.total_seconds >= clean.comm.total_seconds

        # 3. raw accounting: what the codec run *would have* shipped
        #    dense equals what the dense run actually shipped, kind by
        #    kind (fault kinds excluded — their schedules differ only in
        #    how many bytes each retransmit carries)
        raw_base = {k: v for k, v in clean.comm.raw_bytes_by_kind.items()
                    if not k.startswith(FAULT_PREFIXES)}
        assert raw_base == dense.comm.bytes_by_kind

        # 4. the codec: savings dimension is exactly raw minus wire
        savings = faulty.comm.codec_savings_by_kind()
        assert savings, "sparse codec saved nothing on this plan"
        for kind, saved in savings.items():
            base_kind = kind[len("codec:"):]
            assert saved == (faulty.comm.raw_bytes_by_kind[base_kind]
                             - faulty.comm.bytes_by_kind[base_kind])
            assert saved > 0

    @pytest.mark.parametrize("fault_seed", PINNED_SEEDS)
    @pytest.mark.parametrize("plan_key", ["qd2", "vero"])
    def test_pinned_seeds_sparse_codec_replay(self, binned, plan_key,
                                              fault_seed):
        faults = f"{fault_seed}:crash=2,drop=0.08,timeout=0.03"
        clean, faulty, _ = run_pair(plan_key, binned, faults,
                                    codec="sparse")
        for t_clean, t_faulty in zip(clean.ensemble.trees,
                                     faulty.ensemble.trees):
            assert tree_signature(t_clean) == tree_signature(t_faulty)
        base_kinds, fault_kinds = split_kinds(faulty.comm)
        assert base_kinds == clean.comm.bytes_by_kind
        assert faulty.comm.total_bytes - clean.comm.total_bytes == \
            sum(fault_kinds.values())
        _, second, _ = run_pair(plan_key, binned, faults, codec="sparse")
        assert second.comm.bytes_by_kind == faulty.comm.bytes_by_kind
        assert second.comm.raw_bytes_by_kind == \
            faulty.comm.raw_bytes_by_kind
        assert second.comm.total_seconds == faulty.comm.total_seconds


@settings(max_examples=12, deadline=None)
@given(
    fault_seed=st.integers(0, 10_000),
    crashes=st.integers(0, 3),
    drop=st.floats(0.0, 0.15),
    timeout=st.floats(0.0, 0.1),
    num_workers=st.integers(2, 5),
    plan_key=st.sampled_from(plan_keys()),
)
def test_property_any_schedule_is_recoverable_and_exact(
        fault_seed, crashes, drop, timeout, num_workers, plan_key):
    """Hypothesis sweep of the full schedule space: model bit-identity,
    exact ledger accounting and time monotonicity for arbitrary
    recoverable schedules on arbitrary plans."""
    dataset = make_classification(240, 12, density=0.5, seed=3)
    binned = bin_dataset(dataset, 6)
    faults = (f"{fault_seed}:crash={crashes},drop={drop:.4f},"
              f"timeout={timeout:.4f}")
    if not FaultPlan.parse(faults).active:
        faults = f"{fault_seed}:crash=1"
    clean, faulty, system = run_pair(
        plan_key, binned, faults, num_workers=num_workers, num_trees=2,
        num_layers=3,
    )
    for t_clean, t_faulty in zip(clean.ensemble.trees,
                                 faulty.ensemble.trees):
        assert tree_signature(t_clean) == tree_signature(t_faulty)
    base_kinds, fault_kinds = split_kinds(faulty.comm)
    assert base_kinds == clean.comm.bytes_by_kind
    assert faulty.comm.total_bytes - clean.comm.total_bytes == \
        sum(fault_kinds.values())
    assert faulty.comm.total_seconds >= clean.comm.total_seconds


class TestCheckpointing:
    def test_checkpoint_captures_state(self, binned):
        cfg = TrainConfig(num_trees=2, num_layers=4, num_candidates=8,
                          faults="5:crash=1")
        system = make_system("vero", cfg, ClusterConfig(num_workers=3))
        system.fit(binned)
        checkpoint = system.last_checkpoint
        assert isinstance(checkpoint, TreeCheckpoint)
        # the final checkpoint precedes the last tree: one committed tree
        assert checkpoint.tree_index == 1
        assert checkpoint.model_bytes > 0
        # vertical plans share one physical index over all N rows
        assert len(checkpoint.index_state) == 1
        assert checkpoint.index_state[0].size == binned.num_instances
        assert checkpoint.state_bytes == checkpoint.index_state[0].nbytes
        assert checkpoint.network_snapshot.total_bytes <= \
            system.net.total_bytes

    def test_horizontal_checkpoint_is_per_worker(self, binned):
        cfg = TrainConfig(num_trees=1, num_layers=3, num_candidates=8,
                          faults="5:drop=0.05")
        system = make_system("qd2", cfg, ClusterConfig(num_workers=4))
        system.fit(binned)
        checkpoint = system.last_checkpoint
        assert len(checkpoint.index_state) == 4
        assert sum(arr.size for arr in checkpoint.index_state) == \
            binned.num_instances

    def test_fault_free_run_takes_no_checkpoints(self, binned):
        cfg = TrainConfig(num_trees=1, num_layers=3, num_candidates=8)
        system = make_system("qd2", cfg, ClusterConfig(num_workers=2))
        system.fit(binned)
        assert system.injector is None
        assert system.last_checkpoint is None
        assert system.recovery_log == []


class TestFaultPlanEdges:
    def test_unrecoverable_crash_pileup_rejected(self):
        plan = FaultPlan(seed=0, crashes=9, max_crashes_per_tree=2)
        with pytest.raises(UnrecoverableFaultError):
            FaultInjector(plan, num_workers=4, num_trees=1, num_layers=3)

    def test_crashes_beyond_schedule_never_fire(self, binned):
        # all crash events land in trees 0..99; training only 2 trees
        # must fire at most the events scheduled inside those trees
        cfg = TrainConfig(num_trees=100, num_layers=4, num_candidates=8,
                          faults="7:crash=3")
        system = make_system("qd2", cfg, ClusterConfig(num_workers=2))
        system.fit(binned, num_trees=2)
        pending = system.injector.scheduled_crashes()
        # every event inside the trained range fired; the rest stay pending
        assert all(event.tree >= 2 for event in pending)
        assert system.injector.counters.crashes + len(pending) == 3


#: one pinned fault seed per kernel backend — the CI backends job's
#: chaos row (seeds differ so each backend replays a distinct schedule)
BACKEND_FAULT_SEEDS = {"numpy": 101, "pyloop": 202, "numba": 303}


class TestChaosBackends:
    """Fault recovery composes with the kernel-backend registry: a
    faulty run on any available backend must replay to the exact model
    the fault-free *numpy* run produces — one pinned seed per backend,
    on the subtraction-heavy plan whose recovery path rebuilds
    histograms."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_faulty_run_matches_clean_numpy(self, binned, backend):
        seed = BACKEND_FAULT_SEEDS[backend]
        faults = f"{seed}:crash=2,drop=0.08,timeout=0.03"
        cluster = ClusterConfig(num_workers=4)
        clean_cfg = TrainConfig(num_trees=3, num_layers=4,
                                num_candidates=8)
        fault_cfg = TrainConfig(num_trees=3, num_layers=4,
                                num_candidates=8, faults=faults,
                                backend=backend)
        clean = make_system("vero", clean_cfg, cluster).fit(binned)
        faulty = make_system("vero", fault_cfg, cluster).fit(binned)
        assert len(clean.ensemble.trees) == len(faulty.ensemble.trees)
        for t_clean, t_faulty in zip(clean.ensemble.trees,
                                     faulty.ensemble.trees):
            assert tree_signature(t_clean) == tree_signature(t_faulty)
