"""Advisor tests: predictions agree with the Section 3 analysis and with
the simulator's measured outcomes on representative regimes."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, NetworkModel, TrainConfig, \
    make_classification, make_system
from repro.data.dataset import bin_dataset
from repro.systems.advisor import (DEFAULT_SCAN_RATE, QUADRANTS,
                                   calibrate_scan_rate, estimate,
                                   recommend)
from repro.systems.costmodel import WorkloadShape


def shape(n, d, w=8, layers=8, q=20, c=1):
    return WorkloadShape(n, d, w, layers, q, c)


class TestEstimate:
    def test_all_quadrants_priced(self):
        out = estimate(shape(100_000, 1000), avg_nnz_per_instance=50)
        assert set(out) == set(QUADRANTS)
        for est in out.values():
            assert est.comp_seconds > 0
            assert est.comm_seconds > 0
            assert est.histogram_memory_bytes > 0

    def test_vertical_memory_is_w_times_smaller(self):
        out = estimate(shape(100_000, 1000, w=8), 50)
        assert out["QD2"].histogram_memory_bytes == pytest.approx(
            8 * out["QD4"].histogram_memory_bytes
        )

    def test_colstore_hybrid_costs_more_compute(self):
        out = estimate(shape(1_000_000, 100), 50)
        assert out["QD3"].comp_seconds > out["QD4"].comp_seconds

    def test_no_subtraction_costs_more(self):
        out = estimate(shape(1_000_000, 100), 50)
        assert out["QD1"].comp_seconds > out["QD2"].comp_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate(shape(10, 10), 0.0)
        with pytest.raises(ValueError):
            estimate(shape(10, 10), 5, scan_rate=0)


class TestRecommend:
    def test_high_dim_prefers_vero(self):
        rec = recommend(shape(1_000_000, 100_000), 200)
        assert rec.best.quadrant == "QD4"

    def test_multiclass_prefers_vero(self):
        rec = recommend(shape(5_000_000, 5_000, c=10), 100)
        assert rec.best.quadrant == "QD4"

    def test_low_dim_many_instances_prefers_horizontal(self):
        rec = recommend(shape(100_000_000, 30, q=10, layers=6), 30)
        assert rec.best.quadrant == "QD2"

    def test_fast_network_shifts_toward_horizontal(self):
        """Section 6's Gender finding: the 10 Gbps production network
        relieves horizontal partitioning's aggregation bottleneck, so
        QD2's cost relative to QD4 shrinks."""
        slow = recommend(shape(10_000_000, 50_000, layers=7), 30,
                         network=NetworkModel.laboratory())
        fast = recommend(shape(10_000_000, 50_000, layers=7), 30,
                         network=NetworkModel.production())
        gap = lambda rec: (  # noqa: E731 — QD2 cost relative to QD4
            next(e for e in rec.ranking if e.quadrant == "QD2")
            .total_seconds
            / next(e for e in rec.ranking if e.quadrant == "QD4")
            .total_seconds
        )
        assert gap(fast) < gap(slow)

    def test_memory_budget_excludes_horizontal(self):
        # Section 3.1.4 Age example: horizontal histograms need 56.6 GiB
        rec = recommend(
            shape(48_000_000, 330_000, c=9), 50,
            memory_budget_bytes=30 * 2**30,
        )
        assert rec.best.quadrant in ("QD3", "QD4")
        assert any("excluded" in r for r in rec.reasons)

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="no quadrant"):
            recommend(shape(48_000_000, 330_000, c=9), 50,
                      memory_budget_bytes=1024)

    def test_reasons_name_the_winner(self):
        rec = recommend(shape(1_000_000, 100_000), 200)
        assert any(rec.best.quadrant in r for r in rec.reasons)

    def test_ranking_sorted(self):
        rec = recommend(shape(1_000_000, 10_000), 100)
        totals = [e.total_seconds for e in rec.ranking]
        assert totals == sorted(totals)


class TestCalibration:
    def test_calibrate(self):
        assert calibrate_scan_rate(2.0, 1e8) == 5e7
        with pytest.raises(ValueError):
            calibrate_scan_rate(0.0, 1.0)

    def test_default_rate_order_of_magnitude(self):
        assert 1e6 <= DEFAULT_SCAN_RATE <= 1e10


class TestAgainstSimulator:
    """The advisor's winner matches the simulated winner on the two
    regimes the paper contrasts (validated end-to-end)."""

    def run(self, name, dataset, cfg, cluster):
        binned = bin_dataset(dataset, cfg.num_candidates)
        result = make_system(name, cfg, cluster).fit(binned, num_trees=2)
        return result.mean_tree_seconds()

    def test_high_dim_regime(self):
        dataset = make_classification(5_000, 5_000, density=0.01,
                                      seed=91)
        cfg = TrainConfig(num_trees=2, num_layers=6, num_candidates=20)
        cluster = ClusterConfig(num_workers=8)
        measured = {
            q: self.run(name, dataset, cfg, cluster)
            for q, name in (("QD2", "qd2"), ("QD4", "qd4"))
        }
        avg_nnz = dataset.features.nnz / dataset.num_instances
        rec = recommend(
            WorkloadShape(5_000, 5_000, 8, 6, 20), avg_nnz,
        )
        simulated_winner = min(measured, key=measured.get)
        assert rec.best.quadrant == simulated_winner == "QD4"
